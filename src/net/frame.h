#ifndef GTHINKER_NET_FRAME_H_
#define GTHINKER_NET_FRAME_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace gthinker::net {

// ---------------------------------------------------------------------------
// Versioned wire format for socket transports (DESIGN.md "Transport layer").
//
// Every byte on a TCP link is a sequence of frames:
//
//   offset  size  field
//   ------  ----  --------------------------------------------------------
//        0     4  magic        0x47544E46 ("GTNF", little-endian u32)
//        4     2  version      protocol version (kProtocolVersion)
//        6     1  kind         FrameKind (HELLO / DATA / FLUSH)
//        7     1  msg_type     DATA: MsgType of the carried batch
//                              FLUSH: drain round (1 or 2); HELLO: 0
//        8     4  src          DATA: source endpoint; HELLO/FLUSH: source
//                              process rank (i32)
//       12     4  dst          DATA: destination endpoint; else 0 (i32)
//       16     4  payload_len  bytes of payload following the header (u32)
//       20     4  crc32        CRC-32 of the payload bytes (0 when empty)
//   ------  ----
//       24        header size; payload_len payload bytes follow
//
// The version is negotiated at handshake: both sides open with a HELLO frame
// and a mismatch is a clean, reported failure — never a garbage decode of an
// incompatible stream. DATA payloads are the Codec<T>-encoded MessageBatch
// bodies; the per-frame CRC catches wire corruption before any decoder runs.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kFrameMagic = 0x47544E46;  // "GTNF"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 24;
/// Sanity cap on a single frame's payload; anything larger is treated as a
/// corrupt stream (a real batch never approaches this).
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class FrameKind : uint8_t {
  kHello = 1,  // handshake: version + sender rank; first frame both ways
  kData = 2,   // one MessageBatch
  kFlush = 3,  // drain marker (msg_type carries the round, 1 or 2)
};

struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint16_t version = kProtocolVersion;
  FrameKind kind = FrameKind::kData;
  uint8_t msg_type = 0;
  int32_t src = -1;
  int32_t dst = -1;
  uint32_t payload_len = 0;
  uint32_t crc32 = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// Chainable: pass the previous return value as `seed` to continue a
/// computation over scattered fragments.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Serializes a header into exactly kFrameHeaderSize bytes at `out`.
/// Little-endian fixed-width, matching the Serializer convention.
inline void EncodeFrameHeader(const FrameHeader& h, char* out) {
  auto put = [&out](const auto& v) {
    std::memcpy(out, &v, sizeof(v));
    out += sizeof(v);
  };
  put(h.magic);
  put(h.version);
  put(static_cast<uint8_t>(h.kind));
  put(h.msg_type);
  put(h.src);
  put(h.dst);
  put(h.payload_len);
  put(h.crc32);
}

/// Parses a header from `data` (must hold >= kFrameHeaderSize bytes).
/// Returns false on a bad magic, unknown kind, or oversized payload — the
/// stream is corrupt and the connection must be dropped, since framing can
/// never be recovered once the byte position is untrusted. A version
/// mismatch parses successfully (the caller reports it as such).
inline bool DecodeFrameHeader(const char* data, FrameHeader* h) {
  const char* p = data;
  auto get = [&p](auto* v) {
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
  };
  uint8_t kind = 0;
  get(&h->magic);
  get(&h->version);
  get(&kind);
  get(&h->msg_type);
  get(&h->src);
  get(&h->dst);
  get(&h->payload_len);
  get(&h->crc32);
  if (h->magic != kFrameMagic) return false;
  if (kind < static_cast<uint8_t>(FrameKind::kHello) ||
      kind > static_cast<uint8_t>(FrameKind::kFlush)) {
    return false;
  }
  h->kind = static_cast<FrameKind>(kind);
  return h->payload_len <= kMaxFramePayload;
}

}  // namespace gthinker::net

#endif  // GTHINKER_NET_FRAME_H_
