#ifndef GTHINKER_NET_MESSAGE_H_
#define GTHINKER_NET_MESSAGE_H_

#include <cstdint>

#include "net/payload.h"

namespace gthinker {

/// Simulated interconnect parameters. Zero values mean "instantaneous".
/// The defaults model nothing; benches pass GigE-like numbers when the
/// experiment depends on communication cost (e.g. fig2_cost_crossover).
struct NetConfig {
  /// One-way per-batch latency, microseconds (GigE RTT/2 ≈ 50–100 µs).
  int64_t latency_us = 0;
  /// Link bandwidth in megabits/s; 0 = infinite.
  double bandwidth_mbps = 0.0;
};

/// Kinds of batches moving between workers. Everything inter-worker — vertex
/// pulls, responses, control/progress traffic, stolen task batches, aggregator
/// sync — goes through this one framing, exactly like an MPI deployment.
///
/// Each entry documents its actual payload layout as produced by the
/// encoders in core/protocol.h (all integers little-endian fixed width;
/// "blob" = u64 length prefix + bytes).
enum class MsgType : uint8_t {
  kVertexRequest = 0,   // u64 count + VertexId[count] (EncodeVertexRequest)
  kVertexResponse = 1,  // u64 count + count Codec-encoded (id, Γ(id)) records
  kProgressReport = 2,  // ProgressReport::Encode: fixed-width counters +
                        // TaskLedger (9 × i64) + live/disk/drained + agg blob
  kStealOrder = 3,      // i32 dst_worker + i64 order_t_us (hub clock);
                        // decoder tolerates the legacy i32-only short form
  kTaskBatch = 4,       // i64 steal_order_t_us + u64 count + count task blobs
  kAggregatorSync = 5,  // Codec<AggT>-encoded global aggregate (no framing)
  kTerminate = 6,       // empty payload
  kCheckpointRequest = 7,  // u64 epoch (CheckpointRequest::Encode)
  kCheckpointAck = 8,      // i32 worker_id + u64 epoch + agg-delta blob
  kDrainBarrier = 9,       // worker -> master: i32 worker_id;
                           // master -> all: empty payload (drain release)
};

/// Number of distinct MsgType values (for per-type wire accounting).
inline constexpr int kNumMsgTypes = 10;

/// Human-readable message-kind name (metrics labels, trace output).
inline const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kVertexRequest:
      return "vertex_request";
    case MsgType::kVertexResponse:
      return "vertex_response";
    case MsgType::kProgressReport:
      return "progress_report";
    case MsgType::kStealOrder:
      return "steal_order";
    case MsgType::kTaskBatch:
      return "task_batch";
    case MsgType::kAggregatorSync:
      return "aggregator_sync";
    case MsgType::kTerminate:
      return "terminate";
    case MsgType::kCheckpointRequest:
      return "checkpoint_request";
    case MsgType::kCheckpointAck:
      return "checkpoint_ack";
    case MsgType::kDrainBarrier:
      return "drain_barrier";
  }
  return "unknown";
}

/// One batch on the wire. The payload is a refcounted fragment chain
/// (net/payload.h): it is built once by the sender and crosses the hub by
/// handle, with zero intermediate byte copies.
struct MessageBatch {
  int src_worker = -1;
  int dst_worker = -1;
  MsgType type = MsgType::kVertexRequest;
  Payload payload;
  /// Simulated delivery timestamp (microseconds on the hub clock); the
  /// receiver must not process the batch before this instant.
  int64_t deliver_at_us = 0;
  /// Hub-clock instant the batch entered Send(); receive-side delivery
  /// latency (queueing + simulated wire time) is measured against it.
  int64_t sent_at_us = 0;
};

}  // namespace gthinker

#endif  // GTHINKER_NET_MESSAGE_H_
