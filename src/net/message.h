#ifndef GTHINKER_NET_MESSAGE_H_
#define GTHINKER_NET_MESSAGE_H_

#include <cstdint>
#include <string>

namespace gthinker {

/// Simulated interconnect parameters. Zero values mean "instantaneous".
/// The defaults model nothing; benches pass GigE-like numbers when the
/// experiment depends on communication cost (e.g. fig2_cost_crossover).
struct NetConfig {
  /// One-way per-batch latency, microseconds (GigE RTT/2 ≈ 50–100 µs).
  int64_t latency_us = 0;
  /// Link bandwidth in megabits/s; 0 = infinite.
  double bandwidth_mbps = 0.0;
};

/// Kinds of batches moving between workers. Everything inter-worker — vertex
/// pulls, responses, control/progress traffic, stolen task batches, aggregator
/// sync — goes through this one framing, exactly like an MPI deployment.
enum class MsgType : uint8_t {
  kVertexRequest = 0,   // payload: u32 count + VertexId[count] + u64 task tag?
  kVertexResponse = 1,  // payload: serialized (id, Γ(id)) records
  kProgressReport = 2,  // worker -> master periodic progress
  kStealOrder = 3,      // master -> busy worker: send tasks to idle worker
  kTaskBatch = 4,       // busy worker -> idle worker: serialized tasks
  kAggregatorSync = 5,  // worker <-> master partial aggregates
  kTerminate = 6,       // master -> all: job done
  kCheckpointRequest = 7,  // master -> all: snapshot state at this epoch
  kCheckpointAck = 8,      // worker -> master: snapshot committed
  kDrainBarrier = 9,       // worker -> master: locally quiesced;
                           // master -> all: every worker quiesced, drain wire
};

/// Number of distinct MsgType values (for per-type wire accounting).
inline constexpr int kNumMsgTypes = 10;

/// Human-readable message-kind name (metrics labels, trace output).
inline const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kVertexRequest:
      return "vertex_request";
    case MsgType::kVertexResponse:
      return "vertex_response";
    case MsgType::kProgressReport:
      return "progress_report";
    case MsgType::kStealOrder:
      return "steal_order";
    case MsgType::kTaskBatch:
      return "task_batch";
    case MsgType::kAggregatorSync:
      return "aggregator_sync";
    case MsgType::kTerminate:
      return "terminate";
    case MsgType::kCheckpointRequest:
      return "checkpoint_request";
    case MsgType::kCheckpointAck:
      return "checkpoint_ack";
    case MsgType::kDrainBarrier:
      return "drain_barrier";
  }
  return "unknown";
}

/// One batch on the wire.
struct MessageBatch {
  int src_worker = -1;
  int dst_worker = -1;
  MsgType type = MsgType::kVertexRequest;
  std::string payload;
  /// Simulated delivery timestamp (microseconds on the hub clock); the
  /// receiver must not process the batch before this instant.
  int64_t deliver_at_us = 0;
  /// Hub-clock instant the batch entered Send(); receive-side delivery
  /// latency (queueing + simulated wire time) is measured against it.
  int64_t sent_at_us = 0;
};

}  // namespace gthinker

#endif  // GTHINKER_NET_MESSAGE_H_
