#ifndef GTHINKER_NET_HTTP_SERVER_H_
#define GTHINKER_NET_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gthinker::net {

/// Response a route handler produces. Defaults to 200 text/plain.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal dependency-free HTTP/1.0 server for introspection endpoints:
/// GET/HEAD only, one request per connection (`Connection: close`), exact
/// path routing (query strings are stripped). Binds 127.0.0.1 — this is a
/// local diagnosis surface, not a public API. One accept thread serves
/// requests serially; handlers are expected to be cheap snapshot renders.
///
/// Lives in net/ because it is generic plumbing; the obs layer composes the
/// actual status routes on top (see obs/status_server.h).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse()>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path ("/metrics"). Must be called
  /// before Start; later registrations are ignored once running.
  void Route(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` and starts the accept thread. Port 0 asks the
  /// kernel for an ephemeral port (see port() for the result).
  Status Start(int port);

  /// Stops the accept thread and closes the listener. Idempotent.
  void Stop();

  /// The bound port, valid after a successful Start.
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::vector<std::pair<std::string, Handler>> routes_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace gthinker::net

#endif  // GTHINKER_NET_HTTP_SERVER_H_
