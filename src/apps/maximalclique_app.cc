#include "apps/maximalclique_app.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace gthinker {

void MaximalCliqueComper::TaskSpawn(const VertexT& v) {
  if (v.value.empty()) {
    Aggregate(1);  // an isolated vertex is a maximal clique of size 1
    return;
  }
  auto task = std::make_unique<TaskT>();
  task->context().root = v.id;
  task->subgraph().AddVertex(v);  // root first => compact index 0
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

uint64_t MaximalCliqueComper::CandidateCount(const TaskT& task) {
  const VertexT* root = task.subgraph().GetVertex(task.context().root);
  if (root == nullptr) return 0;
  const AdjList& adj = root->value;
  return static_cast<uint64_t>(
      adj.end() - std::upper_bound(adj.begin(), adj.end(), root->id));
}

bool MaximalCliqueComper::Compute(TaskT* task, const Frontier& frontier) {
  for (const VertexT* u : frontier) {
    if (!task->subgraph().HasVertex(u->id)) task->subgraph().AddVertex(*u);
  }
  SplitCtx& ctx = task->context();
  // Compact form cached in the task scratch across budgeted re-entries (a
  // split-narrowed parent re-enters with an empty frontier and the same
  // subgraph); a frontier merge changes the subgraph, so rebuild.
  if (!frontier.empty()) task->set_scratch(nullptr);
  auto cg_ptr = std::static_pointer_cast<CompactGraph>(task->scratch());
  if (cg_ptr == nullptr) {
    cg_ptr = std::make_shared<CompactGraph>(
        CompactFromSubgraph(task->subgraph()));
    task->set_scratch(cg_ptr);
  }
  const CompactGraph& cg = *cg_ptr;
  GT_CHECK_EQ(cg.ids[0], ctx.root);
  const uint64_t candidates = LargerIdNeighbors(cg, /*root=*/0);
  const uint64_t end = std::min(ctx.end, candidates);
  if (SplitArmed()) {
    if (end > ctx.begin + 1 && OverSizeThreshold(end - ctx.begin)) {
      // Oversized before mining even starts: pin the range and hand the
      // task back for an immediate split.
      ctx.end = end;
      RequestSplit();
      return true;
    }
    uint64_t next = end;
    const uint64_t count = CountMaximalCliquesFromRootRange(
        cg, /*root=*/0, ctx.begin, end,
        [this] { return IterationBudgetExceeded(); }, &next);
    if (count > 0) Aggregate(count);
    if (next < end) {
      // Budget overrun: bank the partial count, narrow to the unprocessed
      // suffix and ask the engine to split it across new tasks.
      ctx.begin = next;
      ctx.end = end;
      RequestSplit();
      return true;
    }
    return false;
  }
  // Splitting disarmed: a full-default-range task runs the original kernel
  // (the task_split_enabled=false ablation stays bit-identical to the
  // pre-split code path); a partial range — a steal-split child — runs its
  // slice of the range kernel to completion.
  uint64_t count;
  if (ctx.begin == 0 && ctx.end == SplitCtx::kUnbounded) {
    count = CountMaximalCliquesFromRoot(cg, /*root=*/0);
  } else {
    uint64_t next = 0;
    count = CountMaximalCliquesFromRootRange(cg, /*root=*/0, ctx.begin, end,
                                             /*yield=*/nullptr, &next);
  }
  if (count > 0) Aggregate(count);
  return false;
}

bool MaximalCliqueComper::Split(TaskT* task, int fanout,
                                std::vector<std::unique_ptr<TaskT>>* children) {
  if (!SplitTaskReady(*task)) return false;
  return SplitByCandidateRange(task, fanout, children,
                               [task] { return CandidateCount(*task); });
}

uint64_t MaximalCliqueComper::SplitWeight(const TaskT& task) const {
  if (!SplitTaskReady(task)) return 0;
  const SplitCtx& ctx = task.context();
  const uint64_t end = std::min(ctx.end, CandidateCount(task));
  return end > ctx.begin ? end - ctx.begin : 0;
}

}  // namespace gthinker
