#include "apps/maximalclique_app.h"

#include <memory>

#include "util/logging.h"

namespace gthinker {

void MaximalCliqueComper::TaskSpawn(const VertexT& v) {
  if (v.value.empty()) {
    Aggregate(1);  // an isolated vertex is a maximal clique of size 1
    return;
  }
  auto task = std::make_unique<TaskT>();
  task->context() = v.id;
  task->subgraph().AddVertex(v);  // root first => compact index 0
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

bool MaximalCliqueComper::Compute(TaskT* task, const Frontier& frontier) {
  for (const VertexT* u : frontier) {
    task->subgraph().AddVertex(*u);
  }
  const CompactGraph cg = CompactFromSubgraph(task->subgraph());
  GT_CHECK_EQ(cg.ids[0], task->context());
  const uint64_t count = CountMaximalCliquesFromRoot(cg, /*root=*/0);
  if (count > 0) Aggregate(count);
  return false;
}

}  // namespace gthinker
