#include "apps/quasiclique_app.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "util/logging.h"

namespace gthinker {

void QuasiCliqueComper::TaskSpawn(const VertexT& v) {
  if (min_size_ > 1 && v.value.empty()) return;
  auto task = std::make_unique<TaskT>();
  task->context().root = v.id;
  task->subgraph().AddVertex(v);
  for (VertexId u : v.value) task->Pull(u);  // iteration 1: Γ(v)
  AddTask(std::move(task));
}

uint64_t QuasiCliqueComper::CandidateCount(const TaskT& task) {
  const VertexId root = task.context().root;
  uint64_t count = 0;
  for (const auto& v : task.subgraph().vertices()) {
    if (v.id > root) ++count;
  }
  return count;
}

bool QuasiCliqueComper::Compute(TaskT* task, const Frontier& frontier) {
  for (const VertexT* u : frontier) {
    if (!task->subgraph().HasVertex(u->id)) task->subgraph().AddVertex(*u);
  }
  SplitCtx& ctx = task->context();
  if (task->iteration() == 0 && !frontier.empty()) {
    // Iteration 2: pull 2nd-hop vertices. Only candidates (ID > root) are
    // needed as potential members; 1-hop intermediates of any ID are already
    // in the subgraph and provide the connecting edges. (A split child
    // re-entering at iteration 0 has an empty frontier and goes straight to
    // mining — its ego-network is already complete.)
    std::unordered_set<VertexId> requested;
    for (const VertexT* u : frontier) {
      for (VertexId w : u->value) {
        if (w > ctx.root && !task->subgraph().HasVertex(w) &&
            requested.insert(w).second) {
          task->Pull(w);
        }
      }
    }
    if (!task->pulls().empty()) return true;
  }
  // Compact form cached in the task scratch across budgeted re-entries;
  // invalidated on a frontier merge (the subgraph just changed).
  if (!frontier.empty()) task->set_scratch(nullptr);
  auto cg_ptr = std::static_pointer_cast<CompactGraph>(task->scratch());
  if (cg_ptr == nullptr) {
    cg_ptr = std::make_shared<CompactGraph>(
        CompactFromSubgraph(task->subgraph()));
    task->set_scratch(cg_ptr);
  }
  const CompactGraph& cg = *cg_ptr;
  GT_CHECK_EQ(cg.ids[0], ctx.root);
  const uint64_t candidates = LargerIdVertices(cg, /*root=*/0);
  const uint64_t end = std::min(ctx.end, candidates);
  if (SplitArmed()) {
    if (end > ctx.begin + 1 && OverSizeThreshold(end - ctx.begin)) {
      // Oversized before mining even starts: pin the range and hand the
      // task back for an immediate split.
      ctx.end = end;
      RequestSplit();
      return true;
    }
    uint64_t next = end;
    std::vector<VertexId> found = LargestQuasiCliqueFromRootRange(
        cg, /*root=*/0, gamma_, min_size_,
        /*lower_bound=*/CurrentAgg().size(), ctx.begin, end,
        [this] { return IterationBudgetExceeded(); }, &next);
    if (found.size() > CurrentAgg().size()) Aggregate(found);
    if (next < end) {
      // Budget overrun: bank the best so far, narrow to the unprocessed
      // suffix and ask the engine to split it across new tasks.
      ctx.begin = next;
      ctx.end = end;
      RequestSplit();
      return true;
    }
    return false;
  }
  // Splitting disarmed: a full-default-range task runs the original kernel
  // (the task_split_enabled=false ablation stays identical to the pre-split
  // code path); a partial range — a steal-split child — runs its slice.
  std::vector<VertexId> found;
  if (ctx.begin == 0 && ctx.end == SplitCtx::kUnbounded) {
    found = LargestQuasiCliqueFromRoot(cg, /*root=*/0, gamma_, min_size_);
  } else {
    uint64_t next = 0;
    found = LargestQuasiCliqueFromRootRange(
        cg, /*root=*/0, gamma_, min_size_,
        /*lower_bound=*/CurrentAgg().size(), ctx.begin, end,
        /*yield=*/nullptr, &next);
  }
  if (found.size() > CurrentAgg().size()) Aggregate(found);
  return false;
}

bool QuasiCliqueComper::Split(TaskT* task, int fanout,
                              std::vector<std::unique_ptr<TaskT>>* children) {
  if (!SplitTaskReady(*task)) return false;
  return SplitByCandidateRange(task, fanout, children,
                               [task] { return CandidateCount(*task); });
}

uint64_t QuasiCliqueComper::SplitWeight(const TaskT& task) const {
  if (!SplitTaskReady(task)) return 0;
  const SplitCtx& ctx = task.context();
  const uint64_t end = std::min(ctx.end, CandidateCount(task));
  return end > ctx.begin ? end - ctx.begin : 0;
}

}  // namespace gthinker
