#include "apps/quasiclique_app.h"

#include <memory>
#include <unordered_set>

#include "util/logging.h"

namespace gthinker {

void QuasiCliqueComper::TaskSpawn(const VertexT& v) {
  if (min_size_ > 1 && v.value.empty()) return;
  auto task = std::make_unique<TaskT>();
  task->context() = v.id;
  task->subgraph().AddVertex(v);
  for (VertexId u : v.value) task->Pull(u);  // iteration 1: Γ(v)
  AddTask(std::move(task));
}

bool QuasiCliqueComper::Compute(TaskT* task, const Frontier& frontier) {
  for (const VertexT* u : frontier) {
    if (!task->subgraph().HasVertex(u->id)) task->subgraph().AddVertex(*u);
  }
  if (task->iteration() == 0) {
    // Iteration 2: pull 2nd-hop vertices. Only candidates (ID > root) are
    // needed as potential members; 1-hop intermediates of any ID are already
    // in the subgraph and provide the connecting edges.
    const VertexId root = task->context();
    std::unordered_set<VertexId> requested;
    for (const VertexT* u : frontier) {
      for (VertexId w : u->value) {
        if (w > root && !task->subgraph().HasVertex(w) &&
            requested.insert(w).second) {
          task->Pull(w);
        }
      }
    }
    if (!task->pulls().empty()) return true;
  }
  const CompactGraph cg = CompactFromSubgraph(task->subgraph());
  GT_CHECK_EQ(cg.ids[0], task->context());
  std::vector<VertexId> found =
      LargestQuasiCliqueFromRoot(cg, /*root=*/0, gamma_, min_size_);
  if (found.size() > CurrentAgg().size()) Aggregate(found);
  return false;
}

}  // namespace gthinker
