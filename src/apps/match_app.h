#ifndef GTHINKER_APPS_MATCH_APP_H_
#define GTHINKER_APPS_MATCH_APP_H_

#include <cstdint>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

using MatchTask = Task<LabeledAdj, /*ContextT=*/VertexId>;

/// Subgraph matching (GM): counts embeddings of a small labeled query
/// pattern. One task per data vertex v whose label matches query vertex 0;
/// the task pulls label-filtered neighborhoods hop by hop out to the query's
/// BFS depth, then counts embeddings rooted at v with the backtracking
/// matcher (conflict-edge checks run against a bitset adjacency on small
/// subgraphs — apps/kernels.h). The search space is partitioned by the image
/// of query vertex 0 (paper §IV: "partition by different vertex instances of
/// the same label").
class MatchComper : public Comper<MatchTask, uint64_t> {
 public:
  explicit MatchComper(QueryGraph query);

  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }

  /// The Trimmer for this query: drops adjacency entries whose label does
  /// not appear in the query (paper §IV (7)).
  static void TrimByQuery(const QueryGraph& query, Vertex<LabeledAdj>& v);

 private:
  const QueryGraph query_;
  const int depth_;
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_MATCH_APP_H_
