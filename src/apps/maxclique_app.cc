#include "apps/maxclique_app.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace gthinker {

void MaxCliqueComper::TaskSpawn(const VertexT& v) {
  // Paper Fig. 5 task_spawn: prune v if even taking all of Γ_>(v) cannot
  // beat the current best.
  const AggT s_max = CurrentAgg();
  if (v.value.empty()) {
    if (s_max.empty()) Aggregate({v.id});
    return;
  }
  if (s_max.size() >= 1 + v.value.size()) return;
  auto task = std::make_unique<TaskT>();
  task->context().s = {v.id};
  task->subgraph().AddVertex(v);  // carries Γ_>(v) = ext(S) for iteration 0
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

bool MaxCliqueComper::Compute(TaskT* task, const Frontier& frontier) {
  if (!frontier.empty()) {
    // Top-level task: build t.g as the subgraph induced by ext(S) = Γ_>(v),
    // filtering every pulled adjacency list down to ext(S) (vertices two
    // hops from v cannot be in a clique containing v).
    GT_CHECK_EQ(task->context().s.size(), 1u);
    const VertexT* root = task->subgraph().GetVertex(task->context().s[0]);
    GT_CHECK(root != nullptr);
    const AdjList ext = root->value;
    typename TaskT::SubgraphT g;
    for (const VertexT* u : frontier) {
      VertexT nu;
      nu.id = u->id;
      nu.value.reserve(u->value.size());
      for (VertexId w : u->value) {
        if (std::binary_search(ext.begin(), ext.end(), w)) {
          nu.value.push_back(w);
        }
      }
      g.AddVertex(std::move(nu));
    }
    task->subgraph() = std::move(g);
  }
  Process(task);
  return false;
}

void MaxCliqueComper::Process(TaskT* task) {
  const std::vector<VertexId>& s = task->context().s;
  auto& g = task->subgraph();
  const AggT s_max = CurrentAgg();

  if (g.NumVertices() > tau_) {
    // Decompose: one child ⟨S ∪ u, Γ_>(S ∪ u)⟩ per u ∈ V(g). u's filtered
    // adjacency inside g is exactly ext(S ∪ u).
    for (const VertexT& u : g.vertices()) {
      if (s.size() + 1 + u.value.size() <= s_max.size()) continue;  // prune
      auto child = std::make_unique<TaskT>();
      child->context().s = s;
      child->context().s.push_back(u.id);
      const AdjList& ext = u.value;
      for (VertexId w : ext) {
        const VertexT* wv = g.GetVertex(w);
        GT_CHECK(wv != nullptr);
        VertexT nw;
        nw.id = w;
        for (VertexId x : wv->value) {
          if (std::binary_search(ext.begin(), ext.end(), x)) {
            nw.value.push_back(x);
          }
        }
        child->subgraph().AddVertex(std::move(nw));
      }
      AddTask(std::move(child));
    }
    return;
  }

  // Small enough: mine serially. S itself is a clique by construction.
  if (s.size() > s_max.size()) Aggregate(s);
  if (s.size() + g.NumVertices() <= s_max.size()) return;
  const size_t lower = s_max.size() > s.size() ? s_max.size() - s.size() : 0;
  std::vector<VertexId> clique =
      MaxCliqueInCompact(CompactFromSubgraph(g), lower);
  if (!clique.empty()) {
    std::vector<VertexId> candidate = s;
    candidate.insert(candidate.end(), clique.begin(), clique.end());
    std::sort(candidate.begin(), candidate.end());
    if (candidate.size() > s_max.size()) Aggregate(candidate);
  }
}

}  // namespace gthinker
