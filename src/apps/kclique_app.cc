#include "apps/kclique_app.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace gthinker {

void KCliqueComper::TaskSpawn(const VertexT& v) {
  GT_CHECK_GE(k_, 1);
  if (k_ == 1) {
    Aggregate(1);  // every vertex is a 1-clique
    return;
  }
  // A k-clique rooted at v needs k-1 larger neighbors.
  if (v.value.size() < static_cast<size_t>(k_ - 1)) return;
  auto task = std::make_unique<TaskT>();
  task->context() = v.id;
  task->subgraph().AddVertex(v);
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

bool KCliqueComper::Compute(TaskT* task, const Frontier& frontier) {
  // Build the subgraph induced by ext = Γ_>(v), trimming pulled lists to it.
  const VertexT* root = task->subgraph().GetVertex(task->context());
  GT_CHECK(root != nullptr);
  const AdjList ext = root->value;
  typename TaskT::SubgraphT g;
  for (const VertexT* u : frontier) {
    VertexT nu;
    nu.id = u->id;
    for (VertexId w : u->value) {
      if (std::binary_search(ext.begin(), ext.end(), w)) {
        nu.value.push_back(w);
      }
    }
    g.AddVertex(std::move(nu));
  }
  const uint64_t count = CountCliquesOfSize(CompactFromSubgraph(g), k_ - 1);
  if (count > 0) Aggregate(count);
  return false;
}

}  // namespace gthinker
