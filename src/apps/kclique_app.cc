#include "apps/kclique_app.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace gthinker {

void KCliqueComper::TaskSpawn(const VertexT& v) {
  GT_CHECK_GE(k_, 1);
  if (k_ == 1) {
    Aggregate(1);  // every vertex is a 1-clique
    return;
  }
  // A k-clique rooted at v needs k-1 larger neighbors.
  if (v.value.size() < static_cast<size_t>(k_ - 1)) return;
  auto task = std::make_unique<TaskT>();
  task->context().root = v.id;
  task->subgraph().AddVertex(v);  // root first => compact index 0
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

uint64_t KCliqueComper::CandidateCount(const TaskT& task) {
  // The trimmer already restricted the root's list to Γ_>(root).
  const VertexT* root = task.subgraph().GetVertex(task.context().root);
  return root == nullptr ? 0 : static_cast<uint64_t>(root->value.size());
}

bool KCliqueComper::Compute(TaskT* task, const Frontier& frontier) {
  // Merge the pulled Γ_> lists; CompactFromSubgraph drops adjacency entries
  // pointing outside {root} ∪ Γ_>(root), which is exactly the ext-trimming
  // the old throwaway-subgraph construction did by hand. Pulls arrive in
  // ascending ID order and root is the minimum, so compact index order
  // matches ID order — the precondition of the Γ_> recursion.
  for (const VertexT* u : frontier) {
    if (!task->subgraph().HasVertex(u->id)) task->subgraph().AddVertex(*u);
  }
  SplitCtx& ctx = task->context();
  // Compact form cached in the task scratch across budgeted re-entries;
  // invalidated on a frontier merge (the subgraph just changed).
  if (!frontier.empty()) task->set_scratch(nullptr);
  auto cg_ptr = std::static_pointer_cast<CompactGraph>(task->scratch());
  if (cg_ptr == nullptr) {
    cg_ptr = std::make_shared<CompactGraph>(
        CompactFromSubgraph(task->subgraph()));
    task->set_scratch(cg_ptr);
  }
  const CompactGraph& cg = *cg_ptr;
  GT_CHECK_EQ(cg.ids[0], ctx.root);
  const uint64_t candidates = LargerIdNeighbors(cg, /*root=*/0);
  const uint64_t end = std::min(ctx.end, candidates);
  if (SplitArmed()) {
    if (end > ctx.begin + 1 && OverSizeThreshold(end - ctx.begin)) {
      // Oversized before mining even starts: pin the range and hand the
      // task back for an immediate split.
      ctx.end = end;
      RequestSplit();
      return true;
    }
    uint64_t next = end;
    const uint64_t count = CountCliquesFromRootRange(
        cg, /*root=*/0, k_, ctx.begin, end,
        [this] { return IterationBudgetExceeded(); }, &next);
    if (count > 0) Aggregate(count);
    if (next < end) {
      // Budget overrun: bank the partial count, narrow to the unprocessed
      // suffix and ask the engine to split it across new tasks.
      ctx.begin = next;
      ctx.end = end;
      RequestSplit();
      return true;
    }
    return false;
  }
  uint64_t next = 0;
  const uint64_t count =
      CountCliquesFromRootRange(cg, /*root=*/0, k_, ctx.begin, end,
                                /*yield=*/nullptr, &next);
  if (count > 0) Aggregate(count);
  return false;
}

bool KCliqueComper::Split(TaskT* task, int fanout,
                          std::vector<std::unique_ptr<TaskT>>* children) {
  if (!SplitTaskReady(*task)) return false;
  return SplitByCandidateRange(task, fanout, children,
                               [task] { return CandidateCount(*task); });
}

uint64_t KCliqueComper::SplitWeight(const TaskT& task) const {
  if (!SplitTaskReady(task)) return 0;
  const SplitCtx& ctx = task.context();
  const uint64_t end = std::min(ctx.end, CandidateCount(task));
  return end > ctx.begin ? end - ctx.begin : 0;
}

}  // namespace gthinker
