#include "apps/trianglelist_app.h"

#include <memory>

#include "util/serializer.h"

namespace gthinker {

std::string EncodeTriangle(const Triangle& t) {
  Serializer ser;
  ser.Write(t.v);
  ser.Write(t.u);
  ser.Write(t.w);
  return ser.Release();
}

Status DecodeTriangle(const std::string& record, Triangle* t) {
  Deserializer des(record);
  GT_RETURN_IF_ERROR(des.Read(&t->v));
  GT_RETURN_IF_ERROR(des.Read(&t->u));
  return des.Read(&t->w);
}

void TriangleListComper::TaskSpawn(const VertexT& v) {
  if (v.value.size() < 2) return;
  auto task = std::make_unique<TaskT>();
  task->context() = v.id;
  task->subgraph().AddVertex(v);
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

bool TriangleListComper::Compute(TaskT* task, const Frontier& frontier) {
  const VertexT* root = task->subgraph().GetVertex(task->context());
  const AdjList& root_gt = root->value;
  uint64_t count = 0;
  for (const VertexT* u : frontier) {
    const AdjList& u_gt = u->value;
    size_t i = 0, j = 0;
    while (i < root_gt.size() && j < u_gt.size()) {
      if (root_gt[i] < u_gt[j]) {
        ++i;
      } else if (root_gt[i] > u_gt[j]) {
        ++j;
      } else {
        Output(EncodeTriangle({task->context(), u->id, root_gt[i]}));
        ++count;
        ++i;
        ++j;
      }
    }
  }
  if (count > 0) Aggregate(count);
  return false;
}

}  // namespace gthinker
