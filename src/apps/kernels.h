#ifndef GTHINKER_APPS_KERNELS_H_
#define GTHINKER_APPS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/subgraph.h"
#include "core/vertex.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace gthinker {

/// Borrowed view of one CSR adjacency row: a pointer range over the flat
/// neighbor array, sorted ascending.
struct NbrSpan {
  const int32_t* ptr = nullptr;
  int len = 0;

  const int32_t* begin() const { return ptr; }
  const int32_t* end() const { return ptr + len; }
  int size() const { return len; }
  bool empty() const { return len == 0; }
  int32_t operator[](int i) const { return ptr[i]; }
};

/// Compact (index-renumbered) view of a task's subgraph, the input to the
/// serial mining kernels below. `ids[i]` is the original vertex ID of compact
/// index i. Adjacency is flat CSR: row i is `nbrs[offsets[i]..offsets[i+1])`,
/// sorted ascending — one contiguous array instead of a vector-of-vectors,
/// so neighborhood scans are sequential loads and degree is O(1).
struct CompactGraph {
  std::vector<VertexId> ids;
  std::vector<uint32_t> offsets;  // NumVertices()+1 entries; offsets[0] == 0
  std::vector<int32_t> nbrs;      // concatenated sorted rows

  int NumVertices() const { return static_cast<int>(ids.size()); }
  int Degree(int v) const {
    return static_cast<int>(offsets[v + 1] - offsets[v]);
  }
  NbrSpan Neigh(int v) const {
    return {nbrs.data() + offsets[v], Degree(v)};
  }
  /// Binary search on the shorter of the two rows.
  bool HasEdge(int a, int b) const;
};

/// Builds the compact view of a Subgraph whose vertex values are adjacency
/// lists; adjacency entries pointing outside the subgraph are dropped.
CompactGraph CompactFromSubgraph(const Subgraph<Vertex<AdjList>>& g);

/// Builds a compact view of the whole input graph (serial baselines, tests).
CompactGraph CompactFromGraph(const Graph& g);

// ---------------------------------------------------------------------------
// Dense/sparse kernel switch.
//
// The branch-and-bound kernels (max clique, Bron–Kerbosch, k-clique, the
// quasi-clique searcher and the matcher's conflict checks) run in bitset row
// form — adjacency as an n×n BitMatrix, candidate sets as words — when the
// compact graph has at most KernelBitsetMaxVertices() vertices. Above the
// threshold they fall back to the CSR sorted-list path, which computes
// identical results. The threshold caps the O(n²/8)-byte matrix a task may
// allocate; JobConfig::kernel_bitset_max_vertices wires it per job.
// ---------------------------------------------------------------------------

/// Current threshold (process-global; default 2048 ≈ a 512 KB matrix).
int KernelBitsetMaxVertices();

/// Sets the threshold; 0 disables the bitset kernels entirely. Values < 0
/// clamp to 0. Cluster::Run calls this with the job's configured value.
void SetKernelBitsetMaxVertices(int n);

// ---------------------------------------------------------------------------
// Maximum clique (paper ref [31]): branch and bound with greedy-coloring
// upper bounds, the serial algorithm MCF tasks run on their subgraphs.
// Small/dense inputs run the BBMC bitset form (word-parallel coloring and
// candidate refinement); larger ones the CSR sorted-list form.
// ---------------------------------------------------------------------------

/// Returns the vertex IDs of a clique in `g` strictly larger than
/// `lower_bound` vertices, or empty if none exists. When several maximum
/// cliques exist, which one is returned is deterministic for a given input.
std::vector<VertexId> MaxCliqueInCompact(const CompactGraph& g,
                                         size_t lower_bound);

/// Convenience: exact maximum clique of a whole graph (single-threaded
/// ground truth for tests).
std::vector<VertexId> MaxCliqueSerial(const Graph& g);

// ---------------------------------------------------------------------------
// Maximal clique enumeration (Bron–Kerbosch with pivoting).
// ---------------------------------------------------------------------------

/// Counts the maximal cliques of `g` that contain compact vertex `root` with
/// root as their minimum-ID member, so that summing over every root counts
/// each maximal clique exactly once. Maximality is global as long as `g`
/// contains root's full closed neighborhood: BK's X set is seeded with
/// root's smaller-ID neighbors.
uint64_t CountMaximalCliquesFromRoot(const CompactGraph& g, int root);

/// Serial whole-graph ground truth.
uint64_t CountMaximalCliquesSerial(const Graph& g);

// ---------------------------------------------------------------------------
// Range + yield kernel variants (big-task decomposition).
//
// Each mining kernel's top level iterates a stable candidate order — root's
// larger-original-ID neighbors (cliques) or all larger-ID vertices
// (quasi-cliques), ascending by original vertex ID. The *Range variants
// process only candidate positions [begin, end) of that order, so a task can
// be partitioned into shards whose results sum (counts) or max (sizes) to
// the unsharded answer, bit-identically for the integer counters. Between
// top-level candidates they poll `yield` (nullable): when it returns true
// the kernel stops early, stores the first unprocessed position in *next
// (== end when the range completed) and returns the partial result. At
// least one candidate is processed per call, so budgeted re-entry always
// terminates.
// ---------------------------------------------------------------------------

/// Number of neighbors of `root` with larger original ID: the top-level
/// candidate-space size of the clique range kernels below.
uint64_t LargerIdNeighbors(const CompactGraph& g, int root);

/// Number of vertices of `g` (excluding root) with larger original ID: the
/// candidate-space size of LargestQuasiCliqueFromRootRange.
uint64_t LargerIdVertices(const CompactGraph& g, int root);

/// CountMaximalCliquesFromRoot restricted to top-level branches
/// [begin, end). Summing over a partition of [0, LargerIdNeighbors(g, root))
/// reproduces the unsharded count exactly (the top level runs pivot-free,
/// which partitions the maximal cliques by their second member).
uint64_t CountMaximalCliquesFromRootRange(const CompactGraph& g, int root,
                                          uint64_t begin, uint64_t end,
                                          const std::function<bool()>& yield,
                                          uint64_t* next);

/// Counts the k-cliques of `g` that contain compact vertex `root` with root
/// as their minimum-original-ID member, restricted to the branches whose
/// smallest non-root member sits at position [begin, end) of the candidate
/// order. Full range == the task's share of the global k-clique count.
uint64_t CountCliquesFromRootRange(const CompactGraph& g, int root, int k,
                                   uint64_t begin, uint64_t end,
                                   const std::function<bool()>& yield,
                                   uint64_t* next);

/// LargestQuasiCliqueFromRoot restricted to branches whose first chosen
/// member sits at position [begin, end) of the candidate order, reporting
/// only results strictly larger than `lower_bound` vertices (seed it with
/// the best size found so far to prune). The max size over a partition of
/// the full range equals the unsharded result's size.
std::vector<VertexId> LargestQuasiCliqueFromRootRange(
    const CompactGraph& g, int root, double gamma, size_t min_size,
    size_t lower_bound, uint64_t begin, uint64_t end,
    const std::function<bool()>& yield, uint64_t* next);

// ---------------------------------------------------------------------------
// k-clique counting (kClist-style recursion over the Γ_> DAG).
// ---------------------------------------------------------------------------

/// Counts the cliques with exactly k vertices inside `g` (every vertex of g
/// may participate; orientation comes from compact index order, so pass a
/// graph whose index order matches the global ID order — CompactFromSubgraph
/// and CompactFromGraph both do).
uint64_t CountCliquesOfSize(const CompactGraph& g, int k);

/// Serial whole-graph ground truth: number of k-cliques in g.
uint64_t CountKCliquesSerial(const Graph& g, int k);

// ---------------------------------------------------------------------------
// Triangle counting.
// ---------------------------------------------------------------------------

/// Forward algorithm over Γ_>: Σ_v Σ_{u∈Γ_>(v)} |Γ_>(v) ∩ Γ_>(u)|.
uint64_t CountTrianglesSerial(const Graph& g);

/// Number of elements common to two sorted ranges. Thin wrapper over
/// simd::IntersectAdaptive (apps/kernel_simd.h), kept for callers that
/// don't want the header.
uint64_t SortedIntersectionCount(const AdjList& a, const AdjList& b);

// ---------------------------------------------------------------------------
// Subgraph matching.
// ---------------------------------------------------------------------------

/// A small connected labeled query pattern. Vertex 0 is the matching root;
/// every vertex i > 0 must be adjacent to at least one vertex j < i (so the
/// left-to-right backtracking plan is connected).
struct QueryGraph {
  std::vector<Label> labels;
  std::vector<std::vector<int>> adj;

  int NumVertices() const { return static_cast<int>(labels.size()); }
  bool HasEdge(int a, int b) const;
  /// BFS depth from vertex 0 (how many pull rounds a task needs).
  int DepthFromRoot() const;
  /// True if `label` occurs in the query (Trimmer predicate).
  bool UsesLabel(Label label) const;
  /// Checks the plan-connectivity requirement above.
  bool IsValidPlan() const;

  // Common patterns used by the examples/benches.
  static QueryGraph Triangle(Label a, Label b, Label c);
  static QueryGraph Path3(Label a, Label b, Label c);
  static QueryGraph Star(Label center, const std::vector<Label>& leaves);
};

/// Compact labeled view for the matcher; same flat CSR layout as
/// CompactGraph plus a label per compact vertex.
struct CompactLabeledGraph {
  std::vector<VertexId> ids;
  std::vector<Label> labels;
  std::vector<uint32_t> offsets;
  std::vector<int32_t> nbrs;

  int NumVertices() const { return static_cast<int>(ids.size()); }
  int Degree(int v) const {
    return static_cast<int>(offsets[v + 1] - offsets[v]);
  }
  NbrSpan Neigh(int v) const {
    return {nbrs.data() + offsets[v], Degree(v)};
  }
  bool HasEdge(int a, int b) const;
};

CompactLabeledGraph CompactFromLabeledSubgraph(
    const Subgraph<Vertex<LabeledAdj>>& g);

/// Counts injective label- and edge-preserving mappings of `q` into `g` with
/// query vertex 0 mapped to compact index `root`. (Embeddings are counted per
/// mapping; query automorphisms are not quotiented out — every engine in this
/// repo counts the same way.)
uint64_t CountMatchesFromRoot(const CompactLabeledGraph& g,
                              const QueryGraph& q, int root);

/// Serial whole-graph ground truth: Σ over all root candidates.
uint64_t CountMatchesSerial(const Graph& g, const std::vector<Label>& labels,
                            const QueryGraph& q);

// ---------------------------------------------------------------------------
// γ-quasi-cliques (paper ref [17]): S is a γ-quasi-clique if every vertex of
// S has at least ⌈γ·(|S|-1)⌉ neighbors inside S.
// ---------------------------------------------------------------------------

/// Largest γ-quasi-clique in `g` that contains compact vertex `root`,
/// considering as additional members only vertices whose original ID exceeds
/// ids[root] — so each quasi-clique is found exactly once, by the task
/// rooted at its smallest member. Requires |S| >= min_size; returns empty
/// when none qualifies. γ must be >= 0.5.
std::vector<VertexId> LargestQuasiCliqueFromRoot(const CompactGraph& g,
                                                 int root, double gamma,
                                                 size_t min_size);

/// Serial whole-graph ground truth.
std::vector<VertexId> LargestQuasiCliqueSerial(const Graph& g, double gamma,
                                               size_t min_size);

/// True if S (compact indices) is a γ-quasi-clique of g.
bool IsQuasiClique(const CompactGraph& g, const std::vector<int>& s,
                   double gamma);

}  // namespace gthinker

#endif  // GTHINKER_APPS_KERNELS_H_
