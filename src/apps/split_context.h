#ifndef GTHINKER_APPS_SPLIT_CONTEXT_H_
#define GTHINKER_APPS_SPLIT_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/codec.h"
#include "graph/types.h"
#include "util/serializer.h"
#include "util/status.h"

namespace gthinker {

/// Shared task context of the decomposable mining apps: the root vertex plus
/// the half-open top-level candidate range [begin, end) this task owns, in
/// ascending-original-ID position order (the stable order the range kernels
/// in apps/kernels.h iterate). `end == kUnbounded` means "every candidate";
/// it is pinned to the real candidate count the first time the task splits
/// or yields on its compute budget, so ranges stay meaningful across
/// serialization, spills and steals.
struct SplitCtx {
  static constexpr uint64_t kUnbounded = ~uint64_t{0};

  VertexId root = 0;
  uint64_t begin = 0;
  uint64_t end = kUnbounded;
};

template <>
struct Codec<SplitCtx> : CodecBase<SplitCtx> {
  static void Encode(Serializer& ser, const SplitCtx& c) {
    ser.Write(c.root);
    ser.Write(c.begin);
    ser.Write(c.end);
  }
  static Status Decode(Deserializer& des, SplitCtx* c) {
    GT_RETURN_IF_ERROR(des.Read(&c->root));
    GT_RETURN_IF_ERROR(des.Read(&c->begin));
    return des.Read(&c->end);
  }
};

/// True when a task can be decomposed right now: its Γ slice is fully pulled
/// and merged, so children can carry copies of it and never need a re-pull
/// round-trip. A task still waiting on pulls must travel (or split) whole.
template <typename TaskT>
bool SplitTaskReady(const TaskT& task) {
  return task.pulls().empty() && task.subgraph().NumVertices() > 1;
}

/// Shared Split() skeleton of the range-decomposable apps: narrows `task` in
/// place to the first shard of its candidate range and appends up to
/// fanout-1 new children owning the later shards, each with a full copy of
/// the parent's subgraph and the parent's generation + 1. `candidate_count`
/// is only invoked when the range was never pinned (a steal-path split of a
/// task that never started mining). Returns false — leaving the task
/// untouched — when fewer than two candidates remain.
template <typename TaskT, typename CandidateCountFn>
bool SplitByCandidateRange(TaskT* task, int fanout,
                           std::vector<std::unique_ptr<TaskT>>* children,
                           CandidateCountFn&& candidate_count) {
  SplitCtx& ctx = task->context();
  if (ctx.end == SplitCtx::kUnbounded) ctx.end = candidate_count();
  if (ctx.end <= ctx.begin) return false;
  const uint64_t remaining = ctx.end - ctx.begin;
  const uint64_t shards =
      std::min<uint64_t>(static_cast<uint64_t>(fanout), remaining);
  if (shards < 2) return false;
  const uint64_t size = remaining / shards;
  const uint64_t rem = remaining % shards;
  // Shard i owns [begin + i*size + min(i, rem), ...): the first `rem`
  // shards get one extra candidate, partitioning [begin, end) exactly.
  const auto shard_begin = [&ctx, size, rem](uint64_t i) {
    return ctx.begin + i * size + std::min(i, rem);
  };
  const uint64_t parent_end = ctx.end;
  const uint32_t depth = task->split_depth() + 1;
  for (uint64_t i = 1; i < shards; ++i) {
    auto child = std::make_unique<TaskT>();
    child->subgraph() = task->subgraph();
    // The child's subgraph is a copy of the parent's, so the parent's cached
    // compact form (if any) is valid for the child too: share, don't rebuild.
    // A child that is later serialized (spill/steal) drops it on Deserialize.
    child->set_scratch(task->scratch());
    child->context().root = ctx.root;
    child->context().begin = shard_begin(i);
    child->context().end = i + 1 < shards ? shard_begin(i + 1) : parent_end;
    child->set_split_depth(depth);
    children->push_back(std::move(child));
  }
  ctx.end = shard_begin(1);
  task->set_split_depth(depth);
  return true;
}

}  // namespace gthinker

#endif  // GTHINKER_APPS_SPLIT_CONTEXT_H_
