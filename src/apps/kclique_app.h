#ifndef GTHINKER_APPS_KCLIQUE_APP_H_
#define GTHINKER_APPS_KCLIQUE_APP_H_

#include <cstdint>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

using KCliqueTask = Task<AdjList, /*ContextT=*/VertexId>;

/// k-clique counting: one task per vertex v builds the subgraph induced by
/// Γ_>(v) (exactly the MCF task construction, paper Fig. 5 line 2) and
/// counts the (k-1)-cliques in it — each global k-clique is counted once,
/// by its minimum vertex. k = 3 reduces to triangle counting, which the
/// tests exploit as a cross-check. Small task subgraphs count via the
/// word-parallel Γ_> recursion (apps/kernels.h dense/sparse switch).
class KCliqueComper : public Comper<KCliqueTask, uint64_t> {
 public:
  explicit KCliqueComper(int k) : k_(k) {}

  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }

 private:
  const int k_;
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_KCLIQUE_APP_H_
