#ifndef GTHINKER_APPS_KCLIQUE_APP_H_
#define GTHINKER_APPS_KCLIQUE_APP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/kernels.h"
#include "apps/split_context.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

using KCliqueTask = Task<AdjList, /*ContextT=*/SplitCtx>;

/// k-clique counting: one task per vertex v merges the subgraph induced by
/// {v} ∪ Γ_>(v) (exactly the MCF task construction, paper Fig. 5 line 2)
/// and counts the k-cliques containing v — each global k-clique is counted
/// once, by its minimum vertex. k = 3 reduces to triangle counting, which
/// the tests exploit as a cross-check. Small task subgraphs count via the
/// word-parallel Γ_> recursion (apps/kernels.h dense/sparse switch).
///
/// Pair with the Γ_> trimmer (TrimToGreater): pulled adjacency lists then
/// carry only larger-ID neighbors, which is all the recursion reads.
///
/// Decomposable (Split/SplitWeight): the context's candidate range covers
/// Γ_>(v) ascending; top-level branches are partitioned by the smallest
/// non-root member, so shard counts sum bit-identically to the unsplit
/// count.
class KCliqueComper : public Comper<KCliqueTask, uint64_t> {
 public:
  explicit KCliqueComper(int k) : k_(k) {}

  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;
  bool Split(TaskT* task, int fanout,
             std::vector<std::unique_ptr<TaskT>>* children) override;
  uint64_t SplitWeight(const TaskT& task) const override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }

 private:
  /// |Γ_>(root)|, read straight off the (trimmed) root adjacency list.
  static uint64_t CandidateCount(const TaskT& task);

  const int k_;
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_KCLIQUE_APP_H_
