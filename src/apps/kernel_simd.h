#ifndef GTHINKER_APPS_KERNEL_SIMD_H_
#define GTHINKER_APPS_KERNEL_SIMD_H_

// Word-parallel and branch-minimized set primitives underneath the serial
// mining kernels (apps/kernels.h). Three intersection strategies over sorted
// duplicate-free lists:
//
//   merge:   branchless two-pointer merge — the comparison results feed the
//            index increments directly, so similarly-sized inputs run
//            without the mispredicted branch per element the naive
//            if/else-if merge pays.
//   gallop:  exponential probe + binary search of the longer list, driven
//            by the shorter one — O(ns·log nl), the right shape when one
//            side is much shorter (a frontier list against a hub's Γ).
//   bitset:  64-vertex-per-word membership tests. HitBits amortizes one
//            bitmap build over many probe lists; BitMatrix holds a full
//            n×n adjacency for the dense branch-and-bound kernels, where
//            candidate-set intersection becomes AND+popcount over rows.
//
// IntersectAdaptive is the single entry point call sites use: it picks
// gallop past a size-ratio threshold and merge otherwise; the bitset path
// is chosen structurally (HitBitsWorthwhile / kernel_bitset_max_vertices)
// because it needs a reusable build to pay off. The plain loops below are
// written so the compiler's autovectorizer handles the AND/popcount and
// membership-count bodies; no intrinsics beyond popcount/ctz are needed.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gthinker::simd {

inline int PopCount64(uint64_t x) { return __builtin_popcountll(x); }
inline int Ctz64(uint64_t x) { return __builtin_ctzll(x); }

// ---------------------------------------------------------------------------
// Sorted-list intersections.
// ---------------------------------------------------------------------------

/// Branchless two-pointer merge count.
template <typename T>
uint64_t IntersectCountMerge(const T* a, size_t na, const T* b, size_t nb) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const T av = a[i];
    const T bv = b[j];
    count += static_cast<uint64_t>(av == bv);
    i += static_cast<size_t>(av <= bv);
    j += static_cast<size_t>(bv <= av);
  }
  return count;
}

/// Galloping count; `a` must be the shorter side. Each probe exponentially
/// widens a window in `b` from the last match position, then binary-searches
/// inside it, so the cost is O(na·log(nb/na)) on skewed inputs.
template <typename T>
uint64_t IntersectCountGallop(const T* a, size_t na, const T* b, size_t nb) {
  uint64_t count = 0;
  size_t j = 0;
  for (size_t i = 0; i < na && j < nb; ++i) {
    const T x = a[i];
    size_t step = 1;
    while (j + step < nb && b[j + step] < x) step <<= 1;
    const size_t hi = std::min(j + step + 1, nb);
    j = static_cast<size_t>(std::lower_bound(b + j, b + hi, x) - b);
    if (j < nb && b[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

/// Length ratio beyond which galloping beats merging: merge is linear in
/// na+nb while gallop is ~na·log nb, so the crossover sits where the long
/// side dwarfs the short one.
inline constexpr size_t kGallopRatio = 16;

/// The adaptive entry point: empty-input fast path, gallop past the ratio
/// threshold, branchless merge otherwise. Argument order is irrelevant.
template <typename T>
uint64_t IntersectAdaptive(const T* a, size_t na, const T* b, size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (nb / na >= kGallopRatio) return IntersectCountGallop(a, na, b, nb);
  return IntersectCountMerge(a, na, b, nb);
}

template <typename T>
uint64_t IntersectAdaptive(const std::vector<T>& a, const std::vector<T>& b) {
  return IntersectAdaptive(a.data(), a.size(), b.data(), b.size());
}

/// Materializing merge: appends the common elements (ascending) to `out`.
template <typename T>
void IntersectMergeInto(const T* a, size_t na, const T* b, size_t nb,
                        std::vector<T>* out) {
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const T av = a[i];
    const T bv = b[j];
    if (av == bv) out->push_back(av);
    i += static_cast<size_t>(av <= bv);
    j += static_cast<size_t>(bv <= av);
  }
}

/// Materializing gallop; `a` must be the shorter side.
template <typename T>
void IntersectGallopInto(const T* a, size_t na, const T* b, size_t nb,
                         std::vector<T>* out) {
  size_t j = 0;
  for (size_t i = 0; i < na && j < nb; ++i) {
    const T x = a[i];
    size_t step = 1;
    while (j + step < nb && b[j + step] < x) step <<= 1;
    const size_t hi = std::min(j + step + 1, nb);
    j = static_cast<size_t>(std::lower_bound(b + j, b + hi, x) - b);
    if (j < nb && b[j] == x) {
      out->push_back(x);
      ++j;
    }
  }
}

/// Materializing adaptive intersection; result is ascending.
template <typename T>
void IntersectAdaptiveInto(const T* a, size_t na, const T* b, size_t nb,
                           std::vector<T>* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return;
  if (nb / na >= kGallopRatio) {
    IntersectGallopInto(a, na, b, nb, out);
  } else {
    IntersectMergeInto(a, na, b, nb, out);
  }
}

/// True if the two sorted ranges share any element; early-exits on the first
/// common value (cheaper than a full intersection count when any hit ends
/// the question, e.g. 2-hop reachability probes).
template <typename T>
bool AnyCommonSorted(const T* a, size_t na, const T* b, size_t nb) {
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// HitBits: one-sided reusable membership bitmap.
// ---------------------------------------------------------------------------

/// Bitmap over [0, max(base)] built once from a sorted base list; probing a
/// list of length m costs m O(1) word tests instead of re-merging the base.
/// Pays off when the same base is intersected against many probe lists (the
/// triangle kernels intersect Γ_>(root) against every frontier vertex).
template <typename T>
class HitBits {
 public:
  HitBits() = default;
  HitBits(const T* base, size_t n) { Build(base, n); }

  void Build(const T* base, size_t n) {
    limit_ = n > 0 ? static_cast<size_t>(base[n - 1]) + 1 : 0;
    words_.assign((limit_ + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t v = static_cast<size_t>(base[i]);
      words_[v >> 6] |= uint64_t{1} << (v & 63);
    }
  }

  bool Test(T x) const {
    const size_t v = static_cast<size_t>(x);
    return v < limit_ && ((words_[v >> 6] >> (v & 63)) & 1) != 0;
  }

  uint64_t CountHits(const T* probe, size_t n) const {
    uint64_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      count += static_cast<uint64_t>(Test(probe[i]));
    }
    return count;
  }

  uint64_t CountHits(const std::vector<T>& probe) const {
    return CountHits(probe.data(), probe.size());
  }

 private:
  size_t limit_ = 0;
  std::vector<uint64_t> words_;
};

/// Build-vs-reuse break-even for HitBits: building costs ~domain/64 word
/// clears plus one pass over the base; every probe then skips re-walking the
/// base list that a merge would pay. Requires a meaningful base and at least
/// two probes to amortize.
inline bool HitBitsWorthwhile(size_t base_len, size_t domain,
                              size_t num_probes) {
  if (base_len < 16 || num_probes < 2) return false;
  return domain / 64 + base_len < base_len * num_probes;
}

// ---------------------------------------------------------------------------
// Word-vector operations (rows of BitMatrix, P/X sets, candidate sets).
// ---------------------------------------------------------------------------

inline uint64_t WordsCount(const uint64_t* a, size_t w) {
  uint64_t count = 0;
  for (size_t i = 0; i < w; ++i) count += PopCount64(a[i]);
  return count;
}

inline uint64_t WordsAndCount(const uint64_t* a, const uint64_t* b, size_t w) {
  uint64_t count = 0;
  for (size_t i = 0; i < w; ++i) count += PopCount64(a[i] & b[i]);
  return count;
}

inline bool WordsAny(const uint64_t* a, size_t w) {
  for (size_t i = 0; i < w; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

inline bool WordsAnyCommon(const uint64_t* a, const uint64_t* b, size_t w) {
  for (size_t i = 0; i < w; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

inline void WordsAndInto(const uint64_t* a, const uint64_t* b, size_t w,
                         uint64_t* out) {
  for (size_t i = 0; i < w; ++i) out[i] = a[i] & b[i];
}

/// out = a & ~b.
inline void WordsAndNotInto(const uint64_t* a, const uint64_t* b, size_t w,
                            uint64_t* out) {
  for (size_t i = 0; i < w; ++i) out[i] = a[i] & ~b[i];
}

/// Calls f(bit_index) for every set bit, ascending.
template <typename F>
void ForEachBit(const uint64_t* a, size_t w, F&& f) {
  for (size_t i = 0; i < w; ++i) {
    uint64_t word = a[i];
    while (word != 0) {
      f(static_cast<int>(i * 64 + Ctz64(word)));
      word &= word - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// BitMatrix: dense n×n adjacency for the branch-and-bound kernels.
// ---------------------------------------------------------------------------

/// Row-major bit adjacency matrix. One row is the neighborhood of a vertex
/// as a bitset, so candidate-set refinement (P ∩ Γ(v)) is a word-wise AND
/// and |P ∩ Γ(v)| an AND+popcount — the BBMC representation.
class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(int n) { Reset(n); }

  void Reset(int n) {
    n_ = n;
    row_words_ = static_cast<size_t>((n + 63) / 64);
    bits_.assign(static_cast<size_t>(n) * row_words_, 0);
  }

  int num_vertices() const { return n_; }
  size_t row_words() const { return row_words_; }
  bool empty() const { return n_ == 0; }

  void Set(int r, int c) {
    bits_[static_cast<size_t>(r) * row_words_ + (static_cast<size_t>(c) >> 6)] |=
        uint64_t{1} << (c & 63);
  }

  bool Test(int r, int c) const {
    return ((bits_[static_cast<size_t>(r) * row_words_ +
                   (static_cast<size_t>(c) >> 6)] >>
             (c & 63)) &
            1) != 0;
  }

  const uint64_t* Row(int r) const {
    return bits_.data() + static_cast<size_t>(r) * row_words_;
  }

 private:
  int n_ = 0;
  size_t row_words_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace gthinker::simd

#endif  // GTHINKER_APPS_KERNEL_SIMD_H_
