#include "apps/triangle_app.h"

#include <algorithm>

#include "apps/kernel_simd.h"

namespace gthinker {

void TrimToGreater(Vertex<AdjList>& v) {
  auto it = std::upper_bound(v.value.begin(), v.value.end(), v.id);
  v.value.erase(v.value.begin(), it);
}

void TriangleComper::TaskSpawn(const VertexT& v) {
  // With Γ already trimmed to Γ_>, a triangle needs at least two candidates.
  if (v.value.size() < 2) return;
  auto task = std::make_unique<TaskT>();
  task->context() = v.id;
  task->subgraph().AddVertex(v);
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

bool TriangleComper::Compute(TaskT* task, const Frontier& frontier) {
  const VertexT* root = task->subgraph().GetVertex(task->context());
  const AdjList& root_gt = root->value;
  uint64_t count = 0;
  // Γ_>(root) is intersected against every frontier list; amortize one
  // membership-bitmap build over those probes when it beats per-pair merges.
  simd::HitBits<VertexId> bits;
  const size_t domain =
      root_gt.empty() ? 0 : static_cast<size_t>(root_gt.back()) + 1;
  const bool use_bits =
      simd::HitBitsWorthwhile(root_gt.size(), domain, frontier.size());
  if (use_bits) bits.Build(root_gt.data(), root_gt.size());
  for (const VertexT* u : frontier) {
    // u->value is Γ_>(u); the intersection yields w with v < u < w, each
    // (v,u,w) triangle once.
    count += use_bits ? bits.CountHits(u->value)
                      : simd::IntersectAdaptive(root_gt, u->value);
  }
  if (count > 0) Aggregate(count);
  return false;
}

}  // namespace gthinker
