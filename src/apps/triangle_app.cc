#include "apps/triangle_app.h"

#include <algorithm>

namespace gthinker {

void TrimToGreater(Vertex<AdjList>& v) {
  auto it = std::upper_bound(v.value.begin(), v.value.end(), v.id);
  v.value.erase(v.value.begin(), it);
}

void TriangleComper::TaskSpawn(const VertexT& v) {
  // With Γ already trimmed to Γ_>, a triangle needs at least two candidates.
  if (v.value.size() < 2) return;
  auto task = std::make_unique<TaskT>();
  task->context() = v.id;
  task->subgraph().AddVertex(v);
  for (VertexId u : v.value) task->Pull(u);
  AddTask(std::move(task));
}

bool TriangleComper::Compute(TaskT* task, const Frontier& frontier) {
  const VertexT* root = task->subgraph().GetVertex(task->context());
  const AdjList& root_gt = root->value;
  uint64_t count = 0;
  for (const VertexT* u : frontier) {
    // u->value is Γ_>(u); the intersection yields w with v < u < w, each
    // (v,u,w) triangle once.
    count += SortedIntersectionCount(root_gt, u->value);
  }
  if (count > 0) Aggregate(count);
  return false;
}

}  // namespace gthinker
