#include "apps/kernels.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "util/logging.h"

namespace gthinker {

namespace {

bool SortedContains(const std::vector<int>& sorted, int x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

}  // namespace

bool CompactGraph::HasEdge(int a, int b) const {
  if (adj[a].size() > adj[b].size()) std::swap(a, b);
  return SortedContains(adj[a], b);
}

bool CompactLabeledGraph::HasEdge(int a, int b) const {
  if (adj[a].size() > adj[b].size()) std::swap(a, b);
  return SortedContains(adj[a], b);
}

CompactGraph CompactFromSubgraph(const Subgraph<Vertex<AdjList>>& g) {
  CompactGraph out;
  std::unordered_map<VertexId, int> index;
  index.reserve(g.NumVertices());
  for (const auto& v : g.vertices()) {
    index.emplace(v.id, static_cast<int>(out.ids.size()));
    out.ids.push_back(v.id);
  }
  out.adj.resize(out.ids.size());
  for (const auto& v : g.vertices()) {
    const int i = index.at(v.id);
    for (VertexId u : v.value) {
      auto it = index.find(u);
      if (it != index.end()) {
        // Symmetrize: task subgraphs often carry trimmed (Γ_>) lists, where
        // each edge appears in only one endpoint's list.
        out.adj[i].push_back(it->second);
        out.adj[it->second].push_back(i);
      }
    }
  }
  for (auto& list : out.adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return out;
}

CompactGraph CompactFromGraph(const Graph& g) {
  CompactGraph out;
  const VertexId n = g.NumVertices();
  out.ids.resize(n);
  out.adj.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    out.ids[v] = v;
    out.adj[v].assign(g.Neighbors(v).begin(), g.Neighbors(v).end());
    // Graph adjacency is sorted and VertexId order == compact order here.
  }
  return out;
}

// ---------------------------------------------------------------------------
// Maximum clique: Tomita-style branch and bound with greedy coloring bounds.
// ---------------------------------------------------------------------------

namespace {

class CliqueSearcher {
 public:
  CliqueSearcher(const CompactGraph& g, size_t lower_bound)
      : g_(g), best_size_(lower_bound) {}

  std::vector<VertexId> Run() {
    std::vector<int> candidates(g_.NumVertices());
    for (int i = 0; i < g_.NumVertices(); ++i) candidates[i] = i;
    // Highest-degree-first root ordering makes the first coloring tighter.
    std::sort(candidates.begin(), candidates.end(), [this](int a, int b) {
      return g_.adj[a].size() > g_.adj[b].size();
    });
    Expand(candidates);
    std::vector<VertexId> out;
    out.reserve(best_.size());
    for (int v : best_) out.push_back(g_.ids[v]);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  /// Greedy coloring: vertices of `p` are placed into the first color class
  /// containing none of their neighbors; the class index + 1 upper-bounds the
  /// clique size within the processed prefix.
  void ColorSort(const std::vector<int>& p, std::vector<int>* order,
                 std::vector<int>* bound) {
    std::vector<std::vector<int>> classes;
    for (int v : p) {
      size_t c = 0;
      for (; c < classes.size(); ++c) {
        bool conflict = false;
        for (int u : classes[c]) {
          if (g_.HasEdge(v, u)) {
            conflict = true;
            break;
          }
        }
        if (!conflict) break;
      }
      if (c == classes.size()) classes.emplace_back();
      classes[c].push_back(v);
    }
    order->clear();
    bound->clear();
    for (size_t c = 0; c < classes.size(); ++c) {
      for (int v : classes[c]) {
        order->push_back(v);
        bound->push_back(static_cast<int>(c) + 1);
      }
    }
  }

  void Expand(const std::vector<int>& p) {
    std::vector<int> order, bound;
    ColorSort(p, &order, &bound);
    for (int i = static_cast<int>(order.size()) - 1; i >= 0; --i) {
      if (r_.size() + bound[i] <= best_size_) return;  // color-bound cut
      const int v = order[i];
      r_.push_back(v);
      std::vector<int> next;
      next.reserve(i);
      for (int j = 0; j < i; ++j) {
        if (g_.HasEdge(v, order[j])) next.push_back(order[j]);
      }
      if (next.empty()) {
        if (r_.size() > best_size_) {
          best_size_ = r_.size();
          best_ = r_;
        }
      } else {
        Expand(next);
      }
      r_.pop_back();
    }
  }

  const CompactGraph& g_;
  size_t best_size_;
  std::vector<int> r_;
  std::vector<int> best_;
};

}  // namespace

std::vector<VertexId> MaxCliqueInCompact(const CompactGraph& g,
                                         size_t lower_bound) {
  return CliqueSearcher(g, lower_bound).Run();
}

std::vector<VertexId> MaxCliqueSerial(const Graph& g) {
  return MaxCliqueInCompact(CompactFromGraph(g), 0);
}

// ---------------------------------------------------------------------------
// Maximal clique enumeration.
// ---------------------------------------------------------------------------

namespace {

/// Bron–Kerbosch with pivoting over sorted compact-index sets.
class MaximalCliqueCounter {
 public:
  explicit MaximalCliqueCounter(const CompactGraph& g) : g_(g) {}

  uint64_t CountFrom(int root) {
    count_ = 0;
    std::vector<int> p, x;
    // Order candidates/exclusions by original ID relative to the root.
    for (int u : g_.adj[root]) {
      if (g_.ids[u] > g_.ids[root]) {
        p.push_back(u);
      } else {
        x.push_back(u);
      }
    }
    Recurse(p, x);
    return count_;
  }

 private:
  std::vector<int> IntersectAdj(const std::vector<int>& set, int v) const {
    std::vector<int> out;
    out.reserve(set.size());
    for (int u : set) {
      if (g_.HasEdge(u, v)) out.push_back(u);
    }
    return out;
  }

  void Recurse(std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      ++count_;
      return;
    }
    // Pivot: the vertex of P ∪ X covering the most of P.
    int pivot = -1;
    size_t best_cover = 0;
    for (const std::vector<int>* side : {&p, &x}) {
      for (int u : *side) {
        size_t cover = 0;
        for (int w : p) {
          if (g_.HasEdge(u, w)) ++cover;
        }
        if (pivot < 0 || cover > best_cover) {
          pivot = u;
          best_cover = cover;
        }
      }
    }
    std::vector<int> candidates;
    for (int v : p) {
      if (!g_.HasEdge(pivot, v)) candidates.push_back(v);
    }
    for (int v : candidates) {
      Recurse(IntersectAdj(p, v), IntersectAdj(x, v));
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  const CompactGraph& g_;
  uint64_t count_ = 0;
};

}  // namespace

uint64_t CountMaximalCliquesFromRoot(const CompactGraph& g, int root) {
  return MaximalCliqueCounter(g).CountFrom(root);
}

uint64_t CountMaximalCliquesSerial(const Graph& g) {
  const CompactGraph cg = CompactFromGraph(g);
  uint64_t total = 0;
  for (int v = 0; v < cg.NumVertices(); ++v) {
    total += CountMaximalCliquesFromRoot(cg, v);
  }
  // Isolated vertices are maximal cliques of size 1 but have no adjacency
  // to recurse over — CountFrom finds them via the empty P/X base case, so
  // nothing extra is needed here.
  return total;
}

// ---------------------------------------------------------------------------
// k-clique counting.
// ---------------------------------------------------------------------------

namespace {

/// cands must be sorted ascending by compact index (the DAG orientation):
/// each recursion level picks the next-larger member, so every k-clique is
/// generated exactly once.
uint64_t CountCliquesRec(const CompactGraph& g, const std::vector<int>& cands,
                         int remaining) {
  if (remaining == 0) return 1;
  if (static_cast<int>(cands.size()) < remaining) return 0;
  if (remaining == 1) return cands.size();
  uint64_t count = 0;
  for (size_t i = 0; i < cands.size(); ++i) {
    const int v = cands[i];
    std::vector<int> next;
    next.reserve(cands.size() - i - 1);
    for (size_t j = i + 1; j < cands.size(); ++j) {
      if (g.HasEdge(v, cands[j])) next.push_back(cands[j]);
    }
    count += CountCliquesRec(g, next, remaining - 1);
  }
  return count;
}

}  // namespace

uint64_t CountCliquesOfSize(const CompactGraph& g, int k) {
  GT_CHECK_GE(k, 1);
  std::vector<int> all(g.NumVertices());
  for (int i = 0; i < g.NumVertices(); ++i) all[i] = i;
  return CountCliquesRec(g, all, k);
}

uint64_t CountKCliquesSerial(const Graph& g, int k) {
  return CountCliquesOfSize(CompactFromGraph(g), k);
}

// ---------------------------------------------------------------------------
// Triangles.
// ---------------------------------------------------------------------------

uint64_t SortedIntersectionCount(const AdjList& a, const AdjList& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t CountTrianglesSerial(const Graph& g) {
  uint64_t total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const AdjList gt_v = g.GreaterNeighbors(v);
    for (VertexId u : gt_v) {
      total += SortedIntersectionCount(gt_v, g.GreaterNeighbors(u));
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Subgraph matching.
// ---------------------------------------------------------------------------

bool QueryGraph::HasEdge(int a, int b) const {
  for (int u : adj[a]) {
    if (u == b) return true;
  }
  return false;
}

int QueryGraph::DepthFromRoot() const {
  std::vector<int> dist(NumVertices(), -1);
  std::queue<int> queue;
  dist[0] = 0;
  queue.push(0);
  int depth = 0;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    depth = std::max(depth, dist[v]);
    for (int u : adj[v]) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  return depth;
}

bool QueryGraph::UsesLabel(Label label) const {
  for (Label l : labels) {
    if (l == label) return true;
  }
  return false;
}

bool QueryGraph::IsValidPlan() const {
  for (int i = 1; i < NumVertices(); ++i) {
    bool backward = false;
    for (int u : adj[i]) {
      if (u < i) {
        backward = true;
        break;
      }
    }
    if (!backward) return false;
  }
  return true;
}

QueryGraph QueryGraph::Triangle(Label a, Label b, Label c) {
  QueryGraph q;
  q.labels = {a, b, c};
  q.adj = {{1, 2}, {0, 2}, {0, 1}};
  return q;
}

QueryGraph QueryGraph::Path3(Label a, Label b, Label c) {
  QueryGraph q;
  q.labels = {a, b, c};
  q.adj = {{1}, {0, 2}, {1}};
  return q;
}

QueryGraph QueryGraph::Star(Label center, const std::vector<Label>& leaves) {
  QueryGraph q;
  q.labels.push_back(center);
  q.adj.emplace_back();
  for (size_t i = 0; i < leaves.size(); ++i) {
    q.labels.push_back(leaves[i]);
    q.adj[0].push_back(static_cast<int>(i) + 1);
    q.adj.push_back({0});
  }
  return q;
}

CompactLabeledGraph CompactFromLabeledSubgraph(
    const Subgraph<Vertex<LabeledAdj>>& g) {
  CompactLabeledGraph out;
  std::unordered_map<VertexId, int> index;
  index.reserve(g.NumVertices());
  for (const auto& v : g.vertices()) {
    index.emplace(v.id, static_cast<int>(out.ids.size()));
    out.ids.push_back(v.id);
    out.labels.push_back(v.value.label);
  }
  out.adj.resize(out.ids.size());
  for (const auto& v : g.vertices()) {
    const int i = index.at(v.id);
    for (const LabeledNbr& nbr : v.value.adj) {
      auto it = index.find(nbr.id);
      if (it != index.end()) {
        out.adj[i].push_back(it->second);
        out.adj[it->second].push_back(i);  // symmetrize (see CompactGraph)
      }
    }
  }
  for (auto& list : out.adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return out;
}

namespace {

class Matcher {
 public:
  Matcher(const CompactLabeledGraph& g, const QueryGraph& q) : g_(g), q_(q) {
    GT_CHECK(q.IsValidPlan()) << "query plan not left-connected";
  }

  uint64_t CountFrom(int root) {
    if (g_.labels[root] != q_.labels[0]) return 0;
    mapping_.assign(q_.NumVertices(), -1);
    used_.assign(g_.NumVertices(), false);
    mapping_[0] = root;
    used_[root] = true;
    const uint64_t count = Extend(1);
    used_[root] = false;
    return count;
  }

 private:
  uint64_t Extend(int qi) {
    if (qi == q_.NumVertices()) return 1;
    // Candidates come from the adjacency of an already-mapped query
    // neighbor; every other mapped query neighbor must also be adjacent.
    int anchor = -1;
    for (int u : q_.adj[qi]) {
      if (u < qi && (anchor < 0 || g_.adj[mapping_[u]].size() <
                                       g_.adj[mapping_[anchor]].size())) {
        anchor = u;
      }
    }
    GT_CHECK_GE(anchor, 0);
    uint64_t count = 0;
    for (int cand : g_.adj[mapping_[anchor]]) {
      if (used_[cand] || g_.labels[cand] != q_.labels[qi]) continue;
      bool ok = true;
      for (int u : q_.adj[qi]) {
        if (u < qi && u != anchor && !g_.HasEdge(mapping_[u], cand)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping_[qi] = cand;
      used_[cand] = true;
      count += Extend(qi + 1);
      used_[cand] = false;
      mapping_[qi] = -1;
    }
    return count;
  }

  const CompactLabeledGraph& g_;
  const QueryGraph& q_;
  std::vector<int> mapping_;
  std::vector<bool> used_;
};

}  // namespace

uint64_t CountMatchesFromRoot(const CompactLabeledGraph& g,
                              const QueryGraph& q, int root) {
  return Matcher(g, q).CountFrom(root);
}

uint64_t CountMatchesSerial(const Graph& g, const std::vector<Label>& labels,
                            const QueryGraph& q) {
  CompactLabeledGraph cg;
  const VertexId n = g.NumVertices();
  cg.ids.resize(n);
  cg.labels = labels;
  cg.adj.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    cg.ids[v] = v;
    cg.adj[v].assign(g.Neighbors(v).begin(), g.Neighbors(v).end());
  }
  Matcher matcher(cg, q);
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    total += matcher.CountFrom(static_cast<int>(v));
  }
  return total;
}

// ---------------------------------------------------------------------------
// γ-quasi-cliques.
// ---------------------------------------------------------------------------

bool IsQuasiClique(const CompactGraph& g, const std::vector<int>& s,
                   double gamma) {
  if (s.size() <= 1) return true;
  const double need = gamma * static_cast<double>(s.size() - 1) - 1e-9;
  for (int v : s) {
    int deg = 0;
    for (int u : s) {
      if (u != v && g.HasEdge(v, u)) ++deg;
    }
    if (static_cast<double>(deg) < need) return false;
  }
  return true;
}

namespace {

class QuasiCliqueSearcher {
 public:
  QuasiCliqueSearcher(const CompactGraph& g, double gamma, size_t min_size)
      : g_(g), gamma_(gamma), min_size_(min_size) {
    GT_CHECK_GE(gamma, 0.5);
    GT_CHECK_GE(min_size, 2u);
  }

  /// Set-enumeration over candidates in ascending original-ID order, so that
  /// each quasi-clique is discovered exactly once (from its smallest member).
  std::vector<VertexId> RunFrom(int root) {
    best_.clear();
    s_ = {root};
    std::vector<int> ext;
    for (int v = 0; v < g_.NumVertices(); ++v) {
      if (g_.ids[v] > g_.ids[root]) ext.push_back(v);
    }
    std::sort(ext.begin(), ext.end(),
              [this](int a, int b) { return g_.ids[a] < g_.ids[b]; });
    Expand(ext);
    std::vector<VertexId> out;
    for (int v : best_) out.push_back(g_.ids[v]);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  /// Degree of v into S ∪ ext (the best it can ever achieve here).
  int PotentialDegree(int v, const std::vector<int>& ext) const {
    int deg = 0;
    for (int u : s_) {
      if (u != v && g_.HasEdge(v, u)) ++deg;
    }
    for (int u : ext) {
      if (u != v && g_.HasEdge(v, u)) ++deg;
    }
    return deg;
  }

  /// dist_G(a, b) <= 2: adjacent or sharing a neighbor. Since a γ>=0.5
  /// quasi-clique induces a subgraph of diameter <= 2 (ref [17]), any two
  /// members are within 2 hops in G, which makes this a sound pairwise
  /// pruning rule for prefixes and candidates alike.
  bool Within2Hops(int a, int b) const {
    if (g_.HasEdge(a, b)) return true;
    const auto& na = g_.adj[a];
    const auto& nb = g_.adj[b];
    size_t i = 0, j = 0;
    while (i < na.size() && j < nb.size()) {
      if (na[i] < nb[j]) {
        ++i;
      } else if (na[i] > nb[j]) {
        ++j;
      } else {
        return true;
      }
    }
    return false;
  }

  void Expand(const std::vector<int>& ext) {
    if (s_.size() >= min_size_ && s_.size() > best_.size() &&
        IsQuasiClique(g_, s_, gamma_)) {
      best_ = s_;
    }
    // Only strictly-better quasi-cliques are interesting from here on.
    const size_t target = std::max(min_size_, best_.size() + 1);
    if (s_.size() + ext.size() < target) {
      return;  // even taking every candidate cannot beat the record
    }
    // Global size cap from member degrees: a final S' of size m needs every
    // member to have >= γ(m-1) neighbors inside S', which is at most its
    // degree into S ∪ ext. A member capping m below the target kills the
    // branch.
    const double need = gamma_ * static_cast<double>(target - 1) - 1e-9;
    for (int v : s_) {
      if (static_cast<double>(PotentialDegree(v, ext)) < need) return;
    }
    std::vector<int> pruned;
    pruned.reserve(ext.size());
    for (int v : ext) {
      if (static_cast<double>(PotentialDegree(v, ext)) < need) continue;
      bool near_all = true;
      for (int u : s_) {
        if (!Within2Hops(u, v)) {
          near_all = false;
          break;
        }
      }
      if (near_all) pruned.push_back(v);
    }
    for (size_t i = 0; i < pruned.size(); ++i) {
      s_.push_back(pruned[i]);
      std::vector<int> next(pruned.begin() + i + 1, pruned.end());
      Expand(next);
      s_.pop_back();
    }
  }

  const CompactGraph& g_;
  const double gamma_;
  const size_t min_size_;
  std::vector<int> s_;
  std::vector<int> best_;
};

}  // namespace

std::vector<VertexId> LargestQuasiCliqueFromRoot(const CompactGraph& g,
                                                 int root, double gamma,
                                                 size_t min_size) {
  return QuasiCliqueSearcher(g, gamma, min_size).RunFrom(root);
}

std::vector<VertexId> LargestQuasiCliqueSerial(const Graph& g, double gamma,
                                               size_t min_size) {
  const CompactGraph cg = CompactFromGraph(g);
  std::vector<VertexId> best;
  for (int v = 0; v < cg.NumVertices(); ++v) {
    std::vector<VertexId> found =
        LargestQuasiCliqueFromRoot(cg, v, gamma, min_size);
    if (found.size() > best.size()) best = std::move(found);
  }
  return best;
}

}  // namespace gthinker
