#include "apps/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "apps/kernel_simd.h"
#include "util/logging.h"

namespace gthinker {

namespace {

bool RowContains(const NbrSpan& row, int32_t x) {
  return std::binary_search(row.begin(), row.end(), x);
}

/// Moves per-vertex rows into the flat CSR arrays (rows must be sorted).
void FlattenRows(const std::vector<std::vector<int32_t>>& rows,
                 std::vector<uint32_t>* offsets, std::vector<int32_t>* nbrs) {
  const size_t n = rows.size();
  size_t total = 0;
  for (const auto& row : rows) total += row.size();
  offsets->resize(n + 1);
  nbrs->clear();
  nbrs->reserve(total);
  for (size_t i = 0; i < n; ++i) {
    (*offsets)[i] = static_cast<uint32_t>(nbrs->size());
    nbrs->insert(nbrs->end(), rows[i].begin(), rows[i].end());
  }
  (*offsets)[n] = static_cast<uint32_t>(nbrs->size());
}

std::atomic<int> g_kernel_bitset_max_vertices{2048};

/// True when the dense bitset kernels should run on an n-vertex compact
/// graph (n fits under the configured BitMatrix cap).
bool UseBitsetKernels(int n) {
  return n > 0 &&
         n <= g_kernel_bitset_max_vertices.load(std::memory_order_relaxed);
}

/// Fills `m` with the adjacency of `g` (both directions).
template <typename CompactT>
void BuildBitMatrix(const CompactT& g, simd::BitMatrix* m) {
  m->Reset(g.NumVertices());
  for (int v = 0; v < g.NumVertices(); ++v) {
    for (int32_t u : g.Neigh(v)) m->Set(v, u);
  }
}

}  // namespace

int KernelBitsetMaxVertices() {
  return g_kernel_bitset_max_vertices.load(std::memory_order_relaxed);
}

void SetKernelBitsetMaxVertices(int n) {
  g_kernel_bitset_max_vertices.store(std::max(0, n),
                                     std::memory_order_relaxed);
}

bool CompactGraph::HasEdge(int a, int b) const {
  if (Degree(a) > Degree(b)) std::swap(a, b);
  return RowContains(Neigh(a), static_cast<int32_t>(b));
}

bool CompactLabeledGraph::HasEdge(int a, int b) const {
  if (Degree(a) > Degree(b)) std::swap(a, b);
  return RowContains(Neigh(a), static_cast<int32_t>(b));
}

CompactGraph CompactFromSubgraph(const Subgraph<Vertex<AdjList>>& g) {
  CompactGraph out;
  out.ids.reserve(g.NumVertices());
  for (const auto& v : g.vertices()) out.ids.push_back(v.id);
  // Sorted (id, index) pairs + binary search for the per-adjacency-entry
  // membership probe: contiguous and cache-friendly where the old
  // unordered_map hopped heap nodes — this probe dominates when a budgeted
  // task rebuilds its compact form on every re-entry.
  std::vector<std::pair<VertexId, int32_t>> index;
  index.reserve(out.ids.size());
  for (size_t k = 0; k < out.ids.size(); ++k) {
    index.emplace_back(out.ids[k], static_cast<int32_t>(k));
  }
  std::sort(index.begin(), index.end());
  const auto find = [&index](VertexId u) -> int32_t {
    auto it = std::lower_bound(
        index.begin(), index.end(), u,
        [](const std::pair<VertexId, int32_t>& p, VertexId x) {
          return p.first < x;
        });
    return it != index.end() && it->first == u ? it->second : -1;
  };
  std::vector<std::vector<int32_t>> rows(out.ids.size());
  int32_t i = 0;
  for (const auto& v : g.vertices()) {
    for (VertexId u : v.value) {
      const int32_t j = find(u);
      if (j >= 0) {
        // Symmetrize: task subgraphs often carry trimmed (Γ_>) lists, where
        // each edge appears in only one endpoint's list.
        rows[i].push_back(j);
        rows[j].push_back(i);
      }
    }
    ++i;
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  FlattenRows(rows, &out.offsets, &out.nbrs);
  return out;
}

CompactGraph CompactFromGraph(const Graph& g) {
  CompactGraph out;
  const VertexId n = g.NumVertices();
  out.ids.resize(n);
  out.offsets.resize(n + 1);
  out.offsets[0] = 0;
  for (VertexId v = 0; v < n; ++v) {
    out.ids[v] = v;
    out.offsets[v + 1] = out.offsets[v] + g.Degree(v);
  }
  out.nbrs.resize(out.offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    // Graph adjacency is sorted and VertexId order == compact order here.
    const AdjList& adj = g.Neighbors(v);
    std::copy(adj.begin(), adj.end(), out.nbrs.begin() + out.offsets[v]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Maximum clique: Tomita-style branch and bound with greedy coloring bounds.
// Two interchangeable engines: the BBMC bitset form for compact graphs under
// the bitset threshold, and the CSR sorted-list form above it.
// ---------------------------------------------------------------------------

namespace {

class CliqueSearcher {
 public:
  CliqueSearcher(const CompactGraph& g, size_t lower_bound)
      : g_(g), best_size_(lower_bound) {}

  std::vector<VertexId> Run() {
    std::vector<int> candidates(g_.NumVertices());
    for (int i = 0; i < g_.NumVertices(); ++i) candidates[i] = i;
    // Highest-degree-first root ordering makes the first coloring tighter.
    std::sort(candidates.begin(), candidates.end(), [this](int a, int b) {
      return g_.Degree(a) > g_.Degree(b);
    });
    Expand(candidates);
    std::vector<VertexId> out;
    out.reserve(best_.size());
    for (int v : best_) out.push_back(g_.ids[v]);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  /// Greedy coloring: vertices of `p` are placed into the first color class
  /// containing none of their neighbors; the class index + 1 upper-bounds the
  /// clique size within the processed prefix.
  void ColorSort(const std::vector<int>& p, std::vector<int>* order,
                 std::vector<int>* bound) {
    std::vector<std::vector<int>> classes;
    for (int v : p) {
      size_t c = 0;
      for (; c < classes.size(); ++c) {
        bool conflict = false;
        for (int u : classes[c]) {
          if (g_.HasEdge(v, u)) {
            conflict = true;
            break;
          }
        }
        if (!conflict) break;
      }
      if (c == classes.size()) classes.emplace_back();
      classes[c].push_back(v);
    }
    order->clear();
    bound->clear();
    for (size_t c = 0; c < classes.size(); ++c) {
      for (int v : classes[c]) {
        order->push_back(v);
        bound->push_back(static_cast<int>(c) + 1);
      }
    }
  }

  void Expand(const std::vector<int>& p) {
    std::vector<int> order, bound;
    ColorSort(p, &order, &bound);
    for (int i = static_cast<int>(order.size()) - 1; i >= 0; --i) {
      if (r_.size() + bound[i] <= best_size_) return;  // color-bound cut
      const int v = order[i];
      r_.push_back(v);
      std::vector<int> next;
      next.reserve(i);
      for (int j = 0; j < i; ++j) {
        if (g_.HasEdge(v, order[j])) next.push_back(order[j]);
      }
      if (next.empty()) {
        if (r_.size() > best_size_) {
          best_size_ = r_.size();
          best_ = r_;
        }
      } else {
        Expand(next);
      }
      r_.pop_back();
    }
  }

  const CompactGraph& g_;
  size_t best_size_;
  std::vector<int> r_;
  std::vector<int> best_;
};

/// BBMC: the same branch and bound with vertices renumbered into degree-
/// descending order and every set held as a bitset, so coloring and
/// candidate refinement run word-parallel (64 vertices per AND).
class BitCliqueSearcher {
 public:
  BitCliqueSearcher(const CompactGraph& g, size_t lower_bound)
      : g_(g), n_(g.NumVertices()), best_size_(lower_bound) {
    perm_.resize(n_);
    for (int i = 0; i < n_; ++i) perm_[i] = i;
    std::sort(perm_.begin(), perm_.end(), [&g](int a, int b) {
      return g.Degree(a) > g.Degree(b);
    });
    std::vector<int> inv(n_);
    for (int i = 0; i < n_; ++i) inv[perm_[i]] = i;
    adj_.Reset(n_);
    for (int v = 0; v < n_; ++v) {
      for (int32_t u : g.Neigh(v)) adj_.Set(inv[v], inv[u]);
    }
    words_ = adj_.row_words();
  }

  std::vector<VertexId> Run() {
    // Recursion depth is bounded by n_, so one scratch frame per depth keeps
    // the whole search allocation-free after warm-up.
    stack_.resize(static_cast<size_t>(n_) + 1);
    Frame& root = stack_[0];
    root.p.assign(words_, 0);
    for (int i = 0; i < n_; ++i) SetBit(&root.p, i);
    Expand(0);
    std::vector<VertexId> out;
    out.reserve(best_.size());
    for (int v : best_) out.push_back(g_.ids[perm_[v]]);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  /// Per-depth scratch: the candidate set plus the coloring buffers, reused
  /// across every visit of that depth.
  struct Frame {
    std::vector<uint64_t> p;
    std::vector<uint64_t> next;
    std::vector<uint64_t> uncolored;
    std::vector<int> order;
    std::vector<int> bound;
  };

  static void SetBit(std::vector<uint64_t>* bits, int v) {
    (*bits)[static_cast<size_t>(v) >> 6] |= uint64_t{1} << (v & 63);
  }
  static void ClearBit(std::vector<uint64_t>* bits, int v) {
    (*bits)[static_cast<size_t>(v) >> 6] &= ~(uint64_t{1} << (v & 63));
  }

  /// Bitset greedy coloring: peel one independent-set color class at a time
  /// by repeatedly taking the first remaining vertex and masking out its
  /// neighborhood with one AND-NOT sweep. Uses f's scratch buffers; on
  /// return f.order/f.bound hold the color-sorted candidates.
  void ColorSort(Frame* f) {
    f->order.clear();
    f->bound.clear();
    f->uncolored = f->p;
    f->next.assign(words_, 0);  // doubles as the current class's queue
    std::vector<uint64_t>& q = f->next;
    int color = 0;
    while (simd::WordsAny(f->uncolored.data(), words_)) {
      ++color;
      q = f->uncolored;
      for (size_t w = 0; w < words_; ++w) {
        while (q[w] != 0) {
          const int v = static_cast<int>(w * 64) + simd::Ctz64(q[w]);
          ClearBit(&q, v);
          ClearBit(&f->uncolored, v);
          // Nothing adjacent to v may join this class; bits below v are
          // already decided, so masking the whole row is safe.
          simd::WordsAndNotInto(q.data(), adj_.Row(v), words_, q.data());
          f->order.push_back(v);
          f->bound.push_back(color);
        }
      }
    }
  }

  void Expand(size_t depth) {
    Frame& f = stack_[depth];
    ColorSort(&f);
    Frame& child = stack_[depth + 1];
    for (int i = static_cast<int>(f.order.size()) - 1; i >= 0; --i) {
      if (r_.size() + f.bound[i] <= best_size_) return;  // color-bound cut
      const int v = f.order[i];
      ClearBit(&f.p, v);  // p now holds exactly order[0..i-1]
      child.p.resize(words_);
      simd::WordsAndInto(f.p.data(), adj_.Row(v), words_, child.p.data());
      r_.push_back(v);
      if (!simd::WordsAny(child.p.data(), words_)) {
        if (r_.size() > best_size_) {
          best_size_ = r_.size();
          best_ = r_;
        }
      } else {
        Expand(depth + 1);
      }
      r_.pop_back();
    }
  }

  const CompactGraph& g_;
  const int n_;
  std::vector<int> perm_;
  simd::BitMatrix adj_;
  size_t words_ = 0;
  size_t best_size_;
  std::vector<int> r_;
  std::vector<int> best_;
  std::vector<Frame> stack_;
};

}  // namespace

std::vector<VertexId> MaxCliqueInCompact(const CompactGraph& g,
                                         size_t lower_bound) {
  if (UseBitsetKernels(g.NumVertices())) {
    return BitCliqueSearcher(g, lower_bound).Run();
  }
  return CliqueSearcher(g, lower_bound).Run();
}

std::vector<VertexId> MaxCliqueSerial(const Graph& g) {
  return MaxCliqueInCompact(CompactFromGraph(g), 0);
}

// ---------------------------------------------------------------------------
// Maximal clique enumeration.
// ---------------------------------------------------------------------------

namespace {

/// Bron–Kerbosch with pivoting over sorted compact-index sets (CSR form,
/// used above the bitset threshold). P stays sorted throughout, so the
/// P-refinement is an adaptive sorted intersection with Γ(v).
class MaximalCliqueCounter {
 public:
  explicit MaximalCliqueCounter(const CompactGraph& g) : g_(g) {}

  uint64_t CountFrom(int root) {
    count_ = 0;
    std::vector<int32_t> p, x;
    // Order candidates/exclusions by original ID relative to the root.
    for (int32_t u : g_.Neigh(root)) {
      if (g_.ids[u] > g_.ids[root]) {
        p.push_back(u);
      } else {
        x.push_back(u);
      }
    }
    Recurse(p, x);
    return count_;
  }

  /// Top-level branches [begin, end) only, pivot-free at the top so the
  /// branches partition the count exactly: branch i moves candidates before
  /// it into X, fixing order[i] as the second member of every clique found
  /// under it. Inner levels still run the pivoted Recurse.
  uint64_t CountFromRange(int root, uint64_t begin, uint64_t end,
                          const std::function<bool()>& yield,
                          uint64_t* next) {
    count_ = 0;
    std::vector<int32_t> order, x;
    for (int32_t u : g_.Neigh(root)) {
      if (g_.ids[u] > g_.ids[root]) {
        order.push_back(u);
      } else {
        x.push_back(u);
      }
    }
    std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
      return g_.ids[a] < g_.ids[b];
    });
    const uint64_t n = order.size();
    if (end > n) end = n;
    *next = end;
    if (begin == 0 && n == 0 && x.empty()) ++count_;  // {root} is maximal
    // Candidates skipped by the range act as exclusions: a clique whose
    // second member precedes the range belongs to an earlier shard.
    for (uint64_t j = 0; j < begin && j < n; ++j) x.push_back(order[j]);
    std::vector<int32_t> np, nx;
    for (uint64_t i = begin; i < end; ++i) {
      if (i > begin && yield && yield()) {
        *next = i;
        return count_;
      }
      const int32_t v = order[i];
      const NbrSpan row = g_.Neigh(v);
      np.clear();
      for (uint64_t j = i + 1; j < n; ++j) {
        if (RowContains(row, order[j])) np.push_back(order[j]);
      }
      // Recurse intersects sorted index sets; re-sort the ID-ordered tail.
      std::sort(np.begin(), np.end());
      nx.clear();
      for (int32_t u : x) {
        if (RowContains(row, u)) nx.push_back(u);
      }
      Recurse(np, nx);
      x.push_back(v);
    }
    return count_;
  }

 private:
  void Recurse(std::vector<int32_t> p, std::vector<int32_t> x) {
    if (p.empty() && x.empty()) {
      ++count_;
      return;
    }
    // Pivot: the vertex of P ∪ X covering the most of P.
    int32_t pivot = -1;
    uint64_t best_cover = 0;
    for (const std::vector<int32_t>* side : {&p, &x}) {
      for (int32_t u : *side) {
        const NbrSpan row = g_.Neigh(u);
        const uint64_t cover = simd::IntersectAdaptive(
            p.data(), p.size(), row.begin(), static_cast<size_t>(row.size()));
        if (pivot < 0 || cover > best_cover) {
          pivot = u;
          best_cover = cover;
        }
      }
    }
    const NbrSpan pivot_row = g_.Neigh(pivot);
    std::vector<int32_t> candidates;
    for (int32_t v : p) {
      if (!RowContains(pivot_row, v)) candidates.push_back(v);
    }
    std::vector<int32_t> np, nx;
    for (int32_t v : candidates) {
      const NbrSpan row = g_.Neigh(v);
      np.clear();
      simd::IntersectAdaptiveInto(p.data(), p.size(), row.begin(),
                                  static_cast<size_t>(row.size()), &np);
      nx.clear();
      for (int32_t u : x) {
        if (RowContains(row, u)) nx.push_back(u);
      }
      Recurse(np, nx);
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  const CompactGraph& g_;
  uint64_t count_ = 0;
};

/// Bitset Bron–Kerbosch: P and X are word vectors, pivot cover is an
/// AND+popcount against the pivot's adjacency row, and the P/X refinement
/// per candidate is two word-wise ANDs.
class BitMaximalCliqueCounter {
 public:
  explicit BitMaximalCliqueCounter(const CompactGraph& g) : g_(g) {
    BuildBitMatrix(g, &adj_);
    words_ = adj_.row_words();
  }

  uint64_t CountFrom(int root) {
    std::vector<uint64_t> p(words_, 0), x(words_, 0);
    for (int32_t u : g_.Neigh(root)) {
      auto* side = g_.ids[u] > g_.ids[root] ? &p : &x;
      (*side)[static_cast<size_t>(u) >> 6] |= uint64_t{1} << (u & 63);
    }
    return Recurse(p, x);
  }

  /// Word-set mirror of MaximalCliqueCounter::CountFromRange: same pivot-
  /// free top level over the ID-sorted candidate order, same partition.
  uint64_t CountFromRange(int root, uint64_t begin, uint64_t end,
                          const std::function<bool()>& yield,
                          uint64_t* next) {
    std::vector<uint64_t> p(words_, 0), x(words_, 0);
    std::vector<int32_t> order;
    for (int32_t u : g_.Neigh(root)) {
      if (g_.ids[u] > g_.ids[root]) {
        order.push_back(u);
        p[static_cast<size_t>(u) >> 6] |= uint64_t{1} << (u & 63);
      } else {
        x[static_cast<size_t>(u) >> 6] |= uint64_t{1} << (u & 63);
      }
    }
    std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
      return g_.ids[a] < g_.ids[b];
    });
    const uint64_t n = order.size();
    if (end > n) end = n;
    *next = end;
    uint64_t count = 0;
    if (begin == 0 && n == 0 && !simd::WordsAny(x.data(), words_)) {
      ++count;  // {root} is maximal
    }
    for (uint64_t j = 0; j < begin && j < n; ++j) {
      const int32_t u = order[j];
      p[static_cast<size_t>(u) >> 6] &= ~(uint64_t{1} << (u & 63));
      x[static_cast<size_t>(u) >> 6] |= uint64_t{1} << (u & 63);
    }
    std::vector<uint64_t> np(words_), nx(words_);
    for (uint64_t i = begin; i < end; ++i) {
      if (i > begin && yield && yield()) {
        *next = i;
        return count;
      }
      const int32_t v = order[i];
      simd::WordsAndInto(p.data(), adj_.Row(v), words_, np.data());
      simd::WordsAndInto(x.data(), adj_.Row(v), words_, nx.data());
      count += Recurse(np, nx);
      p[static_cast<size_t>(v) >> 6] &= ~(uint64_t{1} << (v & 63));
      x[static_cast<size_t>(v) >> 6] |= uint64_t{1} << (v & 63);
    }
    return count;
  }

 private:
  uint64_t Recurse(std::vector<uint64_t> p, std::vector<uint64_t> x) {
    if (!simd::WordsAny(p.data(), words_) &&
        !simd::WordsAny(x.data(), words_)) {
      return 1;
    }
    int pivot = -1;
    uint64_t best_cover = 0;
    const auto consider = [&](int u) {
      const uint64_t cover =
          simd::WordsAndCount(p.data(), adj_.Row(u), words_);
      if (pivot < 0 || cover > best_cover) {
        pivot = u;
        best_cover = cover;
      }
    };
    simd::ForEachBit(p.data(), words_, consider);
    simd::ForEachBit(x.data(), words_, consider);
    std::vector<uint64_t> cand(words_);
    simd::WordsAndNotInto(p.data(), adj_.Row(pivot), words_, cand.data());
    uint64_t count = 0;
    std::vector<uint64_t> np(words_), nx(words_);
    simd::ForEachBit(cand.data(), words_, [&](int v) {
      simd::WordsAndInto(p.data(), adj_.Row(v), words_, np.data());
      simd::WordsAndInto(x.data(), adj_.Row(v), words_, nx.data());
      count += Recurse(np, nx);
      p[static_cast<size_t>(v) >> 6] &= ~(uint64_t{1} << (v & 63));
      x[static_cast<size_t>(v) >> 6] |= uint64_t{1} << (v & 63);
    });
    return count;
  }

  const CompactGraph& g_;
  simd::BitMatrix adj_;
  size_t words_ = 0;
};

}  // namespace

uint64_t CountMaximalCliquesFromRoot(const CompactGraph& g, int root) {
  if (UseBitsetKernels(g.NumVertices())) {
    return BitMaximalCliqueCounter(g).CountFrom(root);
  }
  return MaximalCliqueCounter(g).CountFrom(root);
}

uint64_t LargerIdNeighbors(const CompactGraph& g, int root) {
  uint64_t n = 0;
  for (int32_t u : g.Neigh(root)) {
    if (g.ids[u] > g.ids[root]) ++n;
  }
  return n;
}

uint64_t LargerIdVertices(const CompactGraph& g, int root) {
  uint64_t n = 0;
  for (int v = 0; v < g.NumVertices(); ++v) {
    if (g.ids[v] > g.ids[root]) ++n;
  }
  return n;
}

uint64_t CountMaximalCliquesFromRootRange(const CompactGraph& g, int root,
                                          uint64_t begin, uint64_t end,
                                          const std::function<bool()>& yield,
                                          uint64_t* next) {
  if (UseBitsetKernels(g.NumVertices())) {
    return BitMaximalCliqueCounter(g).CountFromRange(root, begin, end, yield,
                                                     next);
  }
  return MaximalCliqueCounter(g).CountFromRange(root, begin, end, yield,
                                                next);
}

uint64_t CountMaximalCliquesSerial(const Graph& g) {
  const CompactGraph cg = CompactFromGraph(g);
  uint64_t total = 0;
  if (UseBitsetKernels(cg.NumVertices())) {
    BitMaximalCliqueCounter counter(cg);  // share the matrix across roots
    for (int v = 0; v < cg.NumVertices(); ++v) total += counter.CountFrom(v);
    return total;
  }
  for (int v = 0; v < cg.NumVertices(); ++v) {
    total += CountMaximalCliquesFromRoot(cg, v);
  }
  // Isolated vertices are maximal cliques of size 1 but have no adjacency
  // to recurse over — CountFrom finds them via the empty P/X base case, so
  // nothing extra is needed here.
  return total;
}

// ---------------------------------------------------------------------------
// k-clique counting.
// ---------------------------------------------------------------------------

namespace {

/// cands must be sorted ascending by compact index (the DAG orientation):
/// each recursion level picks the next-larger member, so every k-clique is
/// generated exactly once.
uint64_t CountCliquesRec(const CompactGraph& g,
                         const std::vector<int32_t>& cands, int remaining) {
  if (remaining == 0) return 1;
  if (static_cast<int>(cands.size()) < remaining) return 0;
  if (remaining == 1) return cands.size();
  uint64_t count = 0;
  std::vector<int32_t> next;
  for (size_t i = 0; i < cands.size(); ++i) {
    const int32_t v = cands[i];
    const NbrSpan row = g.Neigh(v);
    next.clear();
    // cands[i+1..] are all > v, so intersecting with the full row keeps
    // exactly the larger adjacent candidates.
    simd::IntersectAdaptiveInto(cands.data() + i + 1, cands.size() - i - 1,
                                row.begin(), static_cast<size_t>(row.size()),
                                &next);
    count += CountCliquesRec(g, next, remaining - 1);
  }
  return count;
}

/// Word-parallel kClist: directed adjacency rows hold only the larger
/// (compact-index) endpoints, so `cands & dir_row(v)` is the next Γ_>
/// candidate set in one AND sweep, and the two innermost levels collapse
/// to popcounts.
class BitKCliqueCounter {
 public:
  explicit BitKCliqueCounter(const CompactGraph& g) {
    const int n = g.NumVertices();
    dir_.Reset(n);
    for (int v = 0; v < n; ++v) {
      for (int32_t u : g.Neigh(v)) {
        if (u > v) dir_.Set(v, u);
      }
    }
    words_ = dir_.row_words();
  }

  uint64_t Count(int n, int k) {
    std::vector<uint64_t> all(words_, 0);
    for (int i = 0; i < n; ++i) {
      all[static_cast<size_t>(i) >> 6] |= uint64_t{1} << (i & 63);
    }
    return Recurse(all, k);
  }

  // Exposed for the range kernel's custom top level.
  size_t words() const { return words_; }
  const uint64_t* Row(int v) const { return dir_.Row(v); }
  uint64_t RecurseOn(const std::vector<uint64_t>& cands, int remaining) {
    return Recurse(cands, remaining);
  }

 private:
  uint64_t Recurse(const std::vector<uint64_t>& cands, int remaining) {
    if (remaining == 1) return simd::WordsCount(cands.data(), words_);
    uint64_t count = 0;
    std::vector<uint64_t> next(words_);
    simd::ForEachBit(cands.data(), words_, [&](int v) {
      if (remaining == 2) {
        count += simd::WordsAndCount(cands.data(), dir_.Row(v), words_);
        return;
      }
      simd::WordsAndInto(cands.data(), dir_.Row(v), words_, next.data());
      if (simd::WordsCount(next.data(), words_) >=
          static_cast<uint64_t>(remaining - 1)) {
        count += Recurse(next, remaining - 1);
      }
    });
    return count;
  }

  simd::BitMatrix dir_;
  size_t words_ = 0;
};

}  // namespace

uint64_t CountCliquesOfSize(const CompactGraph& g, int k) {
  GT_CHECK_GE(k, 1);
  const int n = g.NumVertices();
  if (UseBitsetKernels(n)) return BitKCliqueCounter(g).Count(n, k);
  std::vector<int32_t> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  return CountCliquesRec(g, all, k);
}

uint64_t CountCliquesFromRootRange(const CompactGraph& g, int root, int k,
                                   uint64_t begin, uint64_t end,
                                   const std::function<bool()>& yield,
                                   uint64_t* next) {
  GT_CHECK_GE(k, 1);
  // Candidate order: root's larger-ID neighbors ascending by original ID.
  // Branch i fixes order[i] as the smallest non-root member; the remaining
  // k-2 members come from the later candidates adjacent to it, so branches
  // partition the k-cliques rooted at `root` exactly.
  std::vector<int32_t> order;
  for (int32_t u : g.Neigh(root)) {
    if (g.ids[u] > g.ids[root]) order.push_back(u);
  }
  std::sort(order.begin(), order.end(),
            [&g](int32_t a, int32_t b) { return g.ids[a] < g.ids[b]; });
  const uint64_t n = order.size();
  if (end > n) end = n;
  *next = end;
  if (k == 1) return (begin == 0) ? 1 : 0;  // {root} itself
  if (k == 2) return end - begin;           // root + one candidate
  uint64_t count = 0;
  if (UseBitsetKernels(g.NumVertices())) {
    BitKCliqueCounter counter(g);
    const size_t words = counter.words();
    std::vector<uint64_t> cands(words, 0);
    for (int32_t u : order) {
      cands[static_cast<size_t>(u) >> 6] |= uint64_t{1} << (u & 63);
    }
    std::vector<uint64_t> sub(words);
    for (uint64_t i = begin; i < end; ++i) {
      if (i > begin && yield && yield()) {
        *next = i;
        return count;
      }
      const int32_t v = order[i];
      // dir rows keep only larger compact indices; candidate order is ID
      // order, and the two coincide for CompactFromSubgraph/Graph inputs
      // (the documented precondition of the k-clique kernels).
      if (k == 3) {
        count += simd::WordsAndCount(cands.data(), counter.Row(v), words);
        continue;
      }
      simd::WordsAndInto(cands.data(), counter.Row(v), words, sub.data());
      count += counter.RecurseOn(sub, k - 2);
    }
    return count;
  }
  std::vector<int32_t> sub;
  for (uint64_t i = begin; i < end; ++i) {
    if (i > begin && yield && yield()) {
      *next = i;
      return count;
    }
    const int32_t v = order[i];
    const NbrSpan row = g.Neigh(v);
    sub.clear();
    for (uint64_t j = i + 1; j < n; ++j) {
      if (RowContains(row, order[j])) sub.push_back(order[j]);
    }
    std::sort(sub.begin(), sub.end());  // Rec wants index-sorted sets
    count += CountCliquesRec(g, sub, k - 2);
  }
  return count;
}

uint64_t CountKCliquesSerial(const Graph& g, int k) {
  return CountCliquesOfSize(CompactFromGraph(g), k);
}

// ---------------------------------------------------------------------------
// Triangles.
// ---------------------------------------------------------------------------

uint64_t SortedIntersectionCount(const AdjList& a, const AdjList& b) {
  return simd::IntersectAdaptive(a.data(), a.size(), b.data(), b.size());
}

uint64_t CountTrianglesSerial(const Graph& g) {
  uint64_t total = 0;
  const VertexId n = g.NumVertices();
  simd::HitBits<VertexId> bits;
  for (VertexId v = 0; v < n; ++v) {
    const auto [vb, ve] = g.GreaterRange(v);
    const size_t nv = static_cast<size_t>(ve - vb);
    if (nv < 2) continue;  // Γ_>(v) ∩ Γ_>(u) ⊆ Γ_>(v) \ {u} is empty
    // Γ_>(v) is intersected against every one of its members: amortize a
    // bitmap build over the nv probes when that beats per-pair merges.
    const size_t domain = static_cast<size_t>(vb[nv - 1]) + 1;
    const bool use_bits = simd::HitBitsWorthwhile(nv, domain, nv);
    if (use_bits) bits.Build(vb, nv);
    for (const VertexId* u = vb; u != ve; ++u) {
      const auto [ub, ue] = g.GreaterRange(*u);
      if (use_bits) {
        total += bits.CountHits(ub, static_cast<size_t>(ue - ub));
      } else {
        total += simd::IntersectAdaptive(vb, nv, ub,
                                         static_cast<size_t>(ue - ub));
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Subgraph matching.
// ---------------------------------------------------------------------------

bool QueryGraph::HasEdge(int a, int b) const {
  for (int u : adj[a]) {
    if (u == b) return true;
  }
  return false;
}

int QueryGraph::DepthFromRoot() const {
  std::vector<int> dist(NumVertices(), -1);
  std::queue<int> queue;
  dist[0] = 0;
  queue.push(0);
  int depth = 0;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    depth = std::max(depth, dist[v]);
    for (int u : adj[v]) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  return depth;
}

bool QueryGraph::UsesLabel(Label label) const {
  for (Label l : labels) {
    if (l == label) return true;
  }
  return false;
}

bool QueryGraph::IsValidPlan() const {
  for (int i = 1; i < NumVertices(); ++i) {
    bool backward = false;
    for (int u : adj[i]) {
      if (u < i) {
        backward = true;
        break;
      }
    }
    if (!backward) return false;
  }
  return true;
}

QueryGraph QueryGraph::Triangle(Label a, Label b, Label c) {
  QueryGraph q;
  q.labels = {a, b, c};
  q.adj = {{1, 2}, {0, 2}, {0, 1}};
  return q;
}

QueryGraph QueryGraph::Path3(Label a, Label b, Label c) {
  QueryGraph q;
  q.labels = {a, b, c};
  q.adj = {{1}, {0, 2}, {1}};
  return q;
}

QueryGraph QueryGraph::Star(Label center, const std::vector<Label>& leaves) {
  QueryGraph q;
  q.labels.push_back(center);
  q.adj.emplace_back();
  for (size_t i = 0; i < leaves.size(); ++i) {
    q.labels.push_back(leaves[i]);
    q.adj[0].push_back(static_cast<int>(i) + 1);
    q.adj.push_back({0});
  }
  return q;
}

CompactLabeledGraph CompactFromLabeledSubgraph(
    const Subgraph<Vertex<LabeledAdj>>& g) {
  CompactLabeledGraph out;
  std::unordered_map<VertexId, int> index;
  index.reserve(g.NumVertices());
  for (const auto& v : g.vertices()) {
    index.emplace(v.id, static_cast<int>(out.ids.size()));
    out.ids.push_back(v.id);
    out.labels.push_back(v.value.label);
  }
  std::vector<std::vector<int32_t>> rows(out.ids.size());
  for (const auto& v : g.vertices()) {
    const int i = index.at(v.id);
    for (const LabeledNbr& nbr : v.value.adj) {
      auto it = index.find(nbr.id);
      if (it != index.end()) {
        rows[i].push_back(it->second);
        rows[it->second].push_back(i);  // symmetrize (see CompactGraph)
      }
    }
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  FlattenRows(rows, &out.offsets, &out.nbrs);
  return out;
}

namespace {

class Matcher {
 public:
  Matcher(const CompactLabeledGraph& g, const QueryGraph& q) : g_(g), q_(q) {
    GT_CHECK(q.IsValidPlan()) << "query plan not left-connected";
    if (UseBitsetKernels(g.NumVertices())) {
      BuildBitMatrix(g, &adj_bits_);
    }
  }

  uint64_t CountFrom(int root) {
    if (g_.labels[root] != q_.labels[0]) return 0;
    mapping_.assign(q_.NumVertices(), -1);
    used_.assign(g_.NumVertices(), false);
    mapping_[0] = root;
    used_[root] = true;
    const uint64_t count = Extend(1);
    used_[root] = false;
    return count;
  }

 private:
  /// O(1) bitset row probe when the matrix exists; CSR binary search above
  /// the threshold. Replaces the per-edge HasEdge in the inner loop.
  bool Adjacent(int a, int b) const {
    if (!adj_bits_.empty()) return adj_bits_.Test(a, b);
    return g_.HasEdge(a, b);
  }

  uint64_t Extend(int qi) {
    if (qi == q_.NumVertices()) return 1;
    // Candidates come from the adjacency of an already-mapped query
    // neighbor; every other mapped query neighbor must also be adjacent.
    int anchor = -1;
    for (int u : q_.adj[qi]) {
      if (u < qi && (anchor < 0 || g_.Degree(mapping_[u]) <
                                       g_.Degree(mapping_[anchor]))) {
        anchor = u;
      }
    }
    GT_CHECK_GE(anchor, 0);
    uint64_t count = 0;
    for (int32_t cand : g_.Neigh(mapping_[anchor])) {
      if (used_[cand] || g_.labels[cand] != q_.labels[qi]) continue;
      bool ok = true;
      for (int u : q_.adj[qi]) {
        if (u < qi && u != anchor && !Adjacent(mapping_[u], cand)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping_[qi] = cand;
      used_[cand] = true;
      count += Extend(qi + 1);
      used_[cand] = false;
      mapping_[qi] = -1;
    }
    return count;
  }

  const CompactLabeledGraph& g_;
  const QueryGraph& q_;
  simd::BitMatrix adj_bits_;
  std::vector<int> mapping_;
  std::vector<bool> used_;
};

}  // namespace

uint64_t CountMatchesFromRoot(const CompactLabeledGraph& g,
                              const QueryGraph& q, int root) {
  return Matcher(g, q).CountFrom(root);
}

uint64_t CountMatchesSerial(const Graph& g, const std::vector<Label>& labels,
                            const QueryGraph& q) {
  CompactLabeledGraph cg;
  const VertexId n = g.NumVertices();
  cg.ids.resize(n);
  cg.labels = labels;
  cg.offsets.resize(n + 1);
  cg.offsets[0] = 0;
  for (VertexId v = 0; v < n; ++v) {
    cg.ids[v] = v;
    cg.offsets[v + 1] = cg.offsets[v] + g.Degree(v);
  }
  cg.nbrs.resize(cg.offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    const AdjList& adj = g.Neighbors(v);
    std::copy(adj.begin(), adj.end(), cg.nbrs.begin() + cg.offsets[v]);
  }
  Matcher matcher(cg, q);
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    total += matcher.CountFrom(static_cast<int>(v));
  }
  return total;
}

// ---------------------------------------------------------------------------
// γ-quasi-cliques.
// ---------------------------------------------------------------------------

bool IsQuasiClique(const CompactGraph& g, const std::vector<int>& s,
                   double gamma) {
  if (s.size() <= 1) return true;
  const double need = gamma * static_cast<double>(s.size() - 1) - 1e-9;
  for (int v : s) {
    int deg = 0;
    for (int u : s) {
      if (u != v && g.HasEdge(v, u)) ++deg;
    }
    if (static_cast<double>(deg) < need) return false;
  }
  return true;
}

namespace {

class QuasiCliqueSearcher {
 public:
  QuasiCliqueSearcher(const CompactGraph& g, double gamma, size_t min_size)
      : g_(g), gamma_(gamma), min_size_(min_size) {
    GT_CHECK_GE(gamma, 0.5);
    GT_CHECK_GE(min_size, 2u);
    if (UseBitsetKernels(g.NumVertices())) {
      BuildBitMatrix(g, &adj_bits_);
      words_ = adj_bits_.row_words();
    }
  }

  /// Set-enumeration over candidates in ascending original-ID order, so that
  /// each quasi-clique is discovered exactly once (from its smallest member).
  std::vector<VertexId> RunFrom(int root) {
    best_.clear();
    floor_ = 0;
    s_ = {root};
    std::vector<int> ext;
    for (int v = 0; v < g_.NumVertices(); ++v) {
      if (g_.ids[v] > g_.ids[root]) ext.push_back(v);
    }
    std::sort(ext.begin(), ext.end(),
              [this](int a, int b) { return g_.ids[a] < g_.ids[b]; });
    Expand(ext);
    std::vector<VertexId> out;
    for (int v : best_) out.push_back(g_.ids[v]);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Top-level branches [begin, end) only: branch i commits ext[i] as the
  /// second-smallest member and searches the later candidates. `lower_bound`
  /// seeds the branch-and-bound floor, so shards resumed with the best size
  /// found so far prune as hard as the unsharded search would; only results
  /// strictly larger than the floor are returned.
  std::vector<VertexId> RunFromRange(int root, size_t lower_bound,
                                     uint64_t begin, uint64_t end,
                                     const std::function<bool()>& yield,
                                     uint64_t* next) {
    best_.clear();
    floor_ = lower_bound;
    s_ = {root};
    std::vector<int> ext;
    for (int v = 0; v < g_.NumVertices(); ++v) {
      if (g_.ids[v] > g_.ids[root]) ext.push_back(v);
    }
    std::sort(ext.begin(), ext.end(),
              [this](int a, int b) { return g_.ids[a] < g_.ids[b]; });
    const uint64_t n = ext.size();
    if (end > n) end = n;
    *next = end;
    for (uint64_t i = begin; i < end; ++i) {
      if (i > begin && yield && yield()) {
        *next = i;
        break;
      }
      s_.push_back(ext[i]);
      Expand(std::vector<int>(ext.begin() + static_cast<int64_t>(i) + 1,
                              ext.end()));
      s_.pop_back();
    }
    std::vector<VertexId> out;
    for (int v : best_) out.push_back(g_.ids[v]);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  /// Adjacency probe hoisted out of the inner loops: one bitset row test
  /// under the threshold, a CSR binary search above it (the pre-CSR code
  /// re-ran a binary search per pair from inside HasEdge either way).
  bool Adjacent(int a, int b) const {
    if (words_ > 0) return adj_bits_.Test(a, b);
    return g_.HasEdge(a, b);
  }

  /// Degree of v into S ∪ ext (the best it can ever achieve here).
  int PotentialDegree(int v, const std::vector<int>& ext) const {
    int deg = 0;
    for (int u : s_) {
      if (u != v && Adjacent(v, u)) ++deg;
    }
    for (int u : ext) {
      if (u != v && Adjacent(v, u)) ++deg;
    }
    return deg;
  }

  /// dist_G(a, b) <= 2: adjacent or sharing a neighbor. Since a γ>=0.5
  /// quasi-clique induces a subgraph of diameter <= 2 (ref [17]), any two
  /// members are within 2 hops in G, which makes this a sound pairwise
  /// pruning rule for prefixes and candidates alike. Word-parallel when the
  /// bit rows exist: any common neighbor is one AND sweep with early exit.
  bool Within2Hops(int a, int b) const {
    if (Adjacent(a, b)) return true;
    if (words_ > 0) {
      return simd::WordsAnyCommon(adj_bits_.Row(a), adj_bits_.Row(b), words_);
    }
    const NbrSpan na = g_.Neigh(a);
    const NbrSpan nb = g_.Neigh(b);
    return simd::AnyCommonSorted(na.begin(), static_cast<size_t>(na.size()),
                                 nb.begin(), static_cast<size_t>(nb.size()));
  }

  /// IsQuasiClique over the current S through the hoisted adjacency probe.
  bool CurrentIsQuasiClique() const {
    if (s_.size() <= 1) return true;
    const double need = gamma_ * static_cast<double>(s_.size() - 1) - 1e-9;
    for (int v : s_) {
      int deg = 0;
      for (int u : s_) {
        if (u != v && Adjacent(v, u)) ++deg;
      }
      if (static_cast<double>(deg) < need) return false;
    }
    return true;
  }

  /// Best size the search still has to beat: the largest member set found
  /// in this run, or the externally seeded floor (range shards).
  size_t BestFloor() const { return std::max(best_.size(), floor_); }

  void Expand(const std::vector<int>& ext) {
    if (s_.size() >= min_size_ && s_.size() > BestFloor() &&
        CurrentIsQuasiClique()) {
      best_ = s_;
    }
    // Only strictly-better quasi-cliques are interesting from here on.
    const size_t target = std::max(min_size_, BestFloor() + 1);
    if (s_.size() + ext.size() < target) {
      return;  // even taking every candidate cannot beat the record
    }
    // Global size cap from member degrees: a final S' of size m needs every
    // member to have >= γ(m-1) neighbors inside S', which is at most its
    // degree into S ∪ ext. A member capping m below the target kills the
    // branch.
    const double need = gamma_ * static_cast<double>(target - 1) - 1e-9;
    for (int v : s_) {
      if (static_cast<double>(PotentialDegree(v, ext)) < need) return;
    }
    std::vector<int> pruned;
    pruned.reserve(ext.size());
    for (int v : ext) {
      if (static_cast<double>(PotentialDegree(v, ext)) < need) continue;
      bool near_all = true;
      for (int u : s_) {
        if (!Within2Hops(u, v)) {
          near_all = false;
          break;
        }
      }
      if (near_all) pruned.push_back(v);
    }
    for (size_t i = 0; i < pruned.size(); ++i) {
      s_.push_back(pruned[i]);
      std::vector<int> next(pruned.begin() + i + 1, pruned.end());
      Expand(next);
      s_.pop_back();
    }
  }

  const CompactGraph& g_;
  const double gamma_;
  const size_t min_size_;
  simd::BitMatrix adj_bits_;
  size_t words_ = 0;
  size_t floor_ = 0;
  std::vector<int> s_;
  std::vector<int> best_;
};

}  // namespace

std::vector<VertexId> LargestQuasiCliqueFromRoot(const CompactGraph& g,
                                                 int root, double gamma,
                                                 size_t min_size) {
  return QuasiCliqueSearcher(g, gamma, min_size).RunFrom(root);
}

std::vector<VertexId> LargestQuasiCliqueFromRootRange(
    const CompactGraph& g, int root, double gamma, size_t min_size,
    size_t lower_bound, uint64_t begin, uint64_t end,
    const std::function<bool()>& yield, uint64_t* next) {
  return QuasiCliqueSearcher(g, gamma, min_size)
      .RunFromRange(root, lower_bound, begin, end, yield, next);
}

std::vector<VertexId> LargestQuasiCliqueSerial(const Graph& g, double gamma,
                                               size_t min_size) {
  const CompactGraph cg = CompactFromGraph(g);
  std::vector<VertexId> best;
  for (int v = 0; v < cg.NumVertices(); ++v) {
    std::vector<VertexId> found =
        LargestQuasiCliqueFromRoot(cg, v, gamma, min_size);
    if (found.size() > best.size()) best = std::move(found);
  }
  return best;
}

}  // namespace gthinker
