#include "apps/bundled_triangle_app.h"

#include "apps/kernel_simd.h"
#include "util/logging.h"

namespace gthinker {

void BundledTriangleComper::TaskSpawn(const VertexT& v) {
  // Same skip rule as the unbundled app: Γ_>(v) needs 2+ candidates.
  if (v.value.size() < 2) return;
  if (pending_ == nullptr) {
    pending_ = std::make_unique<TaskT>();
    pending_pulls_.clear();
  }
  pending_->context().roots.push_back(v.id);
  // The root's own Γ_> rides in the subgraph; other roots of the same
  // bundle may appear in it, in which case their lists are already local.
  pending_->subgraph().AddVertex(v);
  for (VertexId u : v.value) {
    if (!pending_->subgraph().HasVertex(u) &&
        pending_pulls_.insert(u).second) {
      pending_->Pull(u);
    }
  }
  if (pending_->context().roots.size() >= bundle_size_) {
    pending_pulls_.clear();
    AddTask(std::move(pending_));
  }
}

void BundledTriangleComper::SpawnFlush() {
  if (pending_ != nullptr) {
    pending_pulls_.clear();
    AddTask(std::move(pending_));
  }
}

bool BundledTriangleComper::Compute(TaskT* task, const Frontier& frontier) {
  for (const VertexT* u : frontier) {
    if (!task->subgraph().HasVertex(u->id)) task->subgraph().AddVertex(*u);
  }
  uint64_t count = 0;
  simd::HitBits<VertexId> bits;
  for (VertexId root : task->context().roots) {
    const VertexT* rv = task->subgraph().GetVertex(root);
    GT_CHECK(rv != nullptr);
    const AdjList& root_gt = rv->value;
    // One bitmap per root, reused across all |Γ_>(root)| probes.
    const size_t domain =
        root_gt.empty() ? 0 : static_cast<size_t>(root_gt.back()) + 1;
    const bool use_bits =
        simd::HitBitsWorthwhile(root_gt.size(), domain, root_gt.size());
    if (use_bits) bits.Build(root_gt.data(), root_gt.size());
    for (VertexId u : root_gt) {
      const VertexT* uv = task->subgraph().GetVertex(u);
      GT_CHECK(uv != nullptr) << "bundle missing pulled vertex " << u;
      count += use_bits ? bits.CountHits(uv->value)
                        : simd::IntersectAdaptive(root_gt, uv->value);
    }
  }
  if (count > 0) Aggregate(count);
  return false;
}

}  // namespace gthinker
