#ifndef GTHINKER_APPS_TRIANGLELIST_APP_H_
#define GTHINKER_APPS_TRIANGLELIST_APP_H_

#include <array>
#include <cstdint>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

/// One listed triangle (v < u < w).
struct Triangle {
  VertexId v = 0;
  VertexId u = 0;
  VertexId w = 0;
};

inline bool operator==(const Triangle& a, const Triangle& b) {
  return a.v == b.v && a.u == b.u && a.w == b.w;
}
inline bool operator<(const Triangle& a, const Triangle& b) {
  if (a.v != b.v) return a.v < b.v;
  if (a.u != b.u) return a.u < b.u;
  return a.w < b.w;
}

/// Encodes/decodes one triangle as an output record.
std::string EncodeTriangle(const Triangle& t);
Status DecodeTriangle(const std::string& record, Triangle* t);

using TriangleListTask = Task<AdjList, /*ContextT=*/VertexId>;

/// Triangle *listing* (paper §I lists it among the target problems): same
/// task structure as TriangleComper, but every triangle (v,u,w) with
/// v < u < w is emitted once through Comper::Output in addition to being
/// counted. Pair with the Γ_> trimmer and a Job::output_dir.
class TriangleListComper : public Comper<TriangleListTask, uint64_t> {
 public:
  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_TRIANGLELIST_APP_H_
