#ifndef GTHINKER_APPS_MAXCLIQUE_APP_H_
#define GTHINKER_APPS_MAXCLIQUE_APP_H_

#include <cstddef>
#include <vector>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

/// Context of an MCF task: the vertex set S already assumed to be in the
/// clique (paper Fig. 5 uses t.S directly).
struct CliqueContext {
  std::vector<VertexId> s;
};

template <>
struct Codec<CliqueContext> {
  static void Encode(Serializer& ser, const CliqueContext& c) {
    ser.WriteVector(c.s);
  }
  static Status Decode(Deserializer& des, CliqueContext* c) {
    return des.ReadVector(&c->s);
  }
  static int64_t Bytes(const CliqueContext& c) {
    return static_cast<int64_t>(sizeof(CliqueContext) +
                                c.s.capacity() * sizeof(VertexId));
  }
};

using CliqueTask = Task<AdjList, CliqueContext>;

/// Maximum clique finding (MCF), the application of paper Fig. 5.
///
/// A task ⟨S, ext(S)⟩ holds S in its context and the subgraph induced by
/// ext(S) = Γ_>(S) in task->subgraph(). Tasks whose subgraph exceeds τ
/// vertices are decomposed into one child task per subgraph vertex;
/// small-enough subgraphs run the serial branch-and-bound kernel with the
/// aggregator's current best |S_max| as the pruning bound. Below the
/// kernel_bitset_max_vertices threshold the kernel runs in BBMC bitset form
/// (see apps/kernels.h); τ and that threshold interact — split tasks are by
/// construction small enough for the bitset path when τ is under it.
class MaxCliqueComper : public Comper<CliqueTask, std::vector<VertexId>> {
 public:
  /// τ: subgraph-size split threshold (paper default 40,000 on billion-edge
  /// graphs; scaled to our inputs).
  explicit MaxCliqueComper(size_t tau = 400) : tau_(tau) {}

  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return {}; }
  /// Larger clique wins; equal sizes break lexicographically so the final
  /// answer is deterministic regardless of discovery order.
  static AggT AggMerge(const AggT& a, const AggT& b) {
    if (a.size() != b.size()) return a.size() > b.size() ? a : b;
    return a <= b ? a : b;
  }

 private:
  /// Runs the decompose-or-mine step on a task whose subgraph is built.
  void Process(TaskT* task);

  size_t tau_;
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_MAXCLIQUE_APP_H_
