#ifndef GTHINKER_APPS_MAXIMALCLIQUE_APP_H_
#define GTHINKER_APPS_MAXIMALCLIQUE_APP_H_

#include <cstdint>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

using MaximalCliqueTask = Task<AdjList, /*ContextT=*/VertexId>;

/// Maximal clique *enumeration* (counting): one task per vertex v pulls v's
/// full neighborhood Γ(v) (no trimming — maximality needs smaller-ID
/// neighbors in the Bron–Kerbosch X set) and counts the maximal cliques
/// whose minimum member is v. Per-task counts sum to the global number of
/// maximal cliques. Small task subgraphs run Bron–Kerbosch with bitset P/X
/// sets (apps/kernels.h dense/sparse switch); the count is identical either
/// way.
class MaximalCliqueComper : public Comper<MaximalCliqueTask, uint64_t> {
 public:
  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_MAXIMALCLIQUE_APP_H_
