#ifndef GTHINKER_APPS_MAXIMALCLIQUE_APP_H_
#define GTHINKER_APPS_MAXIMALCLIQUE_APP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/kernels.h"
#include "apps/split_context.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

using MaximalCliqueTask = Task<AdjList, /*ContextT=*/SplitCtx>;

/// Maximal clique *enumeration* (counting): one task per vertex v pulls v's
/// full neighborhood Γ(v) (no trimming — maximality needs smaller-ID
/// neighbors in the Bron–Kerbosch X set) and counts the maximal cliques
/// whose minimum member is v. Per-task counts sum to the global number of
/// maximal cliques. Small task subgraphs run Bron–Kerbosch with bitset P/X
/// sets (apps/kernels.h dense/sparse switch); the count is identical either
/// way.
///
/// Decomposable (Split/SplitWeight): a task's context carries the range of
/// top-level candidates (v's larger-ID neighbors, ascending) it owns, so an
/// oversized or over-budget task splits into children whose counts sum,
/// bit-identically, to the unsplit count.
class MaximalCliqueComper : public Comper<MaximalCliqueTask, uint64_t> {
 public:
  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;
  bool Split(TaskT* task, int fanout,
             std::vector<std::unique_ptr<TaskT>>* children) override;
  uint64_t SplitWeight(const TaskT& task) const override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }

 private:
  /// Top-level candidate count (larger-ID neighbors of the root), computable
  /// from the root's adjacency list alone — no CompactGraph build, so the
  /// steal path can afford it on the comm thread.
  static uint64_t CandidateCount(const TaskT& task);
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_MAXIMALCLIQUE_APP_H_
