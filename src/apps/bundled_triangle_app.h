#ifndef GTHINKER_APPS_BUNDLED_TRIANGLE_APP_H_
#define GTHINKER_APPS_BUNDLED_TRIANGLE_APP_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

/// Context of a bundled TC task: the roots sharing the task.
struct BundleContext {
  std::vector<VertexId> roots;
};

template <>
struct Codec<BundleContext> {
  static void Encode(Serializer& ser, const BundleContext& c) {
    ser.WriteVector(c.roots);
  }
  static Status Decode(Deserializer& des, BundleContext* c) {
    return des.ReadVector(&c->roots);
  }
  static int64_t Bytes(const BundleContext& c) {
    return static_cast<int64_t>(sizeof(BundleContext) +
                                c.roots.capacity() * sizeof(VertexId));
  }
};

using BundledTriangleTask = Task<AdjList, BundleContext>;

/// Triangle counting with *task bundling*, the paper's §VI future-work
/// optimization (ref [38]): tasks spawned from low-degree vertices are too
/// small to hide their communication, so up to `bundle_size` consecutive
/// roots share one task — one pull round, one scheduling round, shared
/// cached vertices. Results are identical to TriangleComper; only the task
/// granularity changes (see bench/ablation_bundling).
class BundledTriangleComper : public Comper<BundledTriangleTask, uint64_t> {
 public:
  explicit BundledTriangleComper(size_t bundle_size)
      : bundle_size_(bundle_size) {}

  void TaskSpawn(const VertexT& v) override;
  void SpawnFlush() override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }

 private:
  const size_t bundle_size_;
  std::unique_ptr<TaskT> pending_;
  std::unordered_set<VertexId> pending_pulls_;
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_BUNDLED_TRIANGLE_APP_H_
