#ifndef GTHINKER_APPS_QUASICLIQUE_APP_H_
#define GTHINKER_APPS_QUASICLIQUE_APP_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "apps/kernels.h"
#include "apps/split_context.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

using QuasiCliqueTask = Task<AdjList, /*ContextT=*/SplitCtx>;

/// Largest γ-quasi-clique (γ >= 0.5), the motivating application of paper
/// §III: a task spawned from v pulls Γ(v) in iteration 1 and the 2nd-hop
/// neighborhood in iteration 2 (any two members of a γ-quasi-clique are
/// within 2 hops, ref [17]), then mines the collected ego-network with a
/// serial set-enumeration search (adjacency probes hoisted to bitset rows
/// on small subgraphs — apps/kernels.h). Double-counting is avoided by only
/// admitting members with IDs larger than v.
///
/// Do NOT pair this comper with the Γ_> trimmer: 2-hop reachability may pass
/// through intermediate vertices of any ID.
///
/// Decomposable (Split/SplitWeight): the candidate range covers the
/// larger-ID subgraph vertices ascending (branches keyed by the first
/// chosen member). Shards prune against the shared aggregator best, and the
/// max size over any shard partition equals the unsplit result's size.
/// Splitting only triggers once the 2-hop pull phase is complete.
class QuasiCliqueComper
    : public Comper<QuasiCliqueTask, std::vector<VertexId>> {
 public:
  QuasiCliqueComper(double gamma, size_t min_size)
      : gamma_(gamma), min_size_(min_size) {}

  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;
  bool Split(TaskT* task, int fanout,
             std::vector<std::unique_ptr<TaskT>>* children) override;
  uint64_t SplitWeight(const TaskT& task) const override;

  static AggT AggZero() { return {}; }
  static AggT AggMerge(const AggT& a, const AggT& b) {
    if (a.size() != b.size()) return a.size() > b.size() ? a : b;
    return a <= b ? a : b;
  }

 private:
  /// Larger-ID member candidates currently in the subgraph.
  static uint64_t CandidateCount(const TaskT& task);

  const double gamma_;
  const size_t min_size_;
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_QUASICLIQUE_APP_H_
