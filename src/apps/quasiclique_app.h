#ifndef GTHINKER_APPS_QUASICLIQUE_APP_H_
#define GTHINKER_APPS_QUASICLIQUE_APP_H_

#include <cstddef>
#include <vector>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

using QuasiCliqueTask = Task<AdjList, /*ContextT=*/VertexId>;

/// Largest γ-quasi-clique (γ >= 0.5), the motivating application of paper
/// §III: a task spawned from v pulls Γ(v) in iteration 1 and the 2nd-hop
/// neighborhood in iteration 2 (any two members of a γ-quasi-clique are
/// within 2 hops, ref [17]), then mines the collected ego-network with a
/// serial set-enumeration search (adjacency probes hoisted to bitset rows
/// on small subgraphs — apps/kernels.h). Double-counting is avoided by only
/// admitting members with IDs larger than v.
///
/// Do NOT pair this comper with the Γ_> trimmer: 2-hop reachability may pass
/// through intermediate vertices of any ID.
class QuasiCliqueComper
    : public Comper<QuasiCliqueTask, std::vector<VertexId>> {
 public:
  QuasiCliqueComper(double gamma, size_t min_size)
      : gamma_(gamma), min_size_(min_size) {}

  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return {}; }
  static AggT AggMerge(const AggT& a, const AggT& b) {
    if (a.size() != b.size()) return a.size() > b.size() ? a : b;
    return a <= b ? a : b;
  }

 private:
  const double gamma_;
  const size_t min_size_;
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_QUASICLIQUE_APP_H_
