#ifndef GTHINKER_APPS_TRIANGLE_APP_H_
#define GTHINKER_APPS_TRIANGLE_APP_H_

#include <cstdint>
#include <memory>

#include "apps/kernels.h"
#include "core/comper.h"
#include "core/task.h"

namespace gthinker {

/// Trims Γ(v) to Γ_>(v): the Trimmer used by every set-enumeration app
/// (paper §IV (7)); responses then only carry trimmed lists.
void TrimToGreater(Vertex<AdjList>& v);

using TriangleTask = Task<AdjList, /*ContextT=*/VertexId>;

/// Triangle counting (TC): one task per vertex v pulls Γ_>(v) and counts
/// |Γ_>(v) ∩ Γ_>(u)| for every u ∈ Γ_>(v); per-task counts are summed by the
/// aggregator. Each triangle v<u<w is counted exactly once, by v's task.
/// The intersections run through the adaptive toolkit (apps/kernel_simd.h):
/// one Γ_>(v) membership bitmap amortized over the frontier when worthwhile,
/// merge/gallop otherwise.
class TriangleComper : public Comper<TriangleTask, uint64_t> {
 public:
  void TaskSpawn(const VertexT& v) override;
  bool Compute(TaskT* task, const Frontier& frontier) override;

  static AggT AggZero() { return 0; }
  static AggT AggMerge(AggT a, AggT b) { return a + b; }
};

}  // namespace gthinker

#endif  // GTHINKER_APPS_TRIANGLE_APP_H_
