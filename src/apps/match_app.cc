#include "apps/match_app.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "util/logging.h"

namespace gthinker {

MatchComper::MatchComper(QueryGraph query)
    : query_(std::move(query)), depth_(query_.DepthFromRoot()) {
  GT_CHECK(query_.IsValidPlan());
}

void MatchComper::TrimByQuery(const QueryGraph& query,
                              Vertex<LabeledAdj>& v) {
  auto& adj = v.value.adj;
  adj.erase(std::remove_if(adj.begin(), adj.end(),
                           [&query](const LabeledNbr& n) {
                             return !query.UsesLabel(n.label);
                           }),
            adj.end());
}

void MatchComper::TaskSpawn(const VertexT& v) {
  if (v.value.label != query_.labels[0]) return;
  if (query_.NumVertices() > 1 && v.value.adj.empty()) return;
  auto task = std::make_unique<TaskT>();
  task->context() = v.id;
  task->subgraph().AddVertex(v);  // root first => compact index 0
  if (depth_ >= 1) {
    for (const LabeledNbr& nbr : v.value.adj) task->Pull(nbr.id);
  }
  AddTask(std::move(task));
}

bool MatchComper::Compute(TaskT* task, const Frontier& frontier) {
  for (const VertexT* u : frontier) {
    if (!task->subgraph().HasVertex(u->id)) task->subgraph().AddVertex(*u);
  }
  // Expand another hop while the query needs it. iteration() counts the
  // completed hops: after this call it becomes iteration()+1.
  if (static_cast<int>(task->iteration()) + 1 < depth_) {
    std::unordered_set<VertexId> requested;
    for (const VertexT* u : frontier) {
      for (const LabeledNbr& nbr : u->value.adj) {
        if (!task->subgraph().HasVertex(nbr.id) &&
            requested.insert(nbr.id).second) {
          task->Pull(nbr.id);
        }
      }
    }
    if (!task->pulls().empty()) return true;
  }
  const CompactLabeledGraph cg = CompactFromLabeledSubgraph(task->subgraph());
  GT_CHECK_EQ(cg.ids[0], task->context());
  const uint64_t count = CountMatchesFromRoot(cg, query_, /*root=*/0);
  if (count > 0) Aggregate(count);
  return false;
}

}  // namespace gthinker
