#ifndef GTHINKER_BASELINES_PREGEL_APPS_H_
#define GTHINKER_BASELINES_PREGEL_APPS_H_

#include <cstdint>
#include <vector>

#include "baselines/pregel_engine.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace gthinker::baselines {

using PregelOptions = PregelEngine<uint64_t, AdjList>::Options;
using PregelRunStats = PregelEngine<uint64_t, AdjList>::Result;

struct PregelTcResult {
  PregelRunStats stats;
  uint64_t triangles = 0;
};

/// Vertex-centric triangle counting (the Giraph algorithm of paper ref [5]):
/// superstep 0, every v sends to each u ∈ Γ_>(v) the candidate list
/// {w ∈ Γ_>(v) : w > u}; superstep 1, u counts candidates adjacent to it.
/// The message volume is Σ_v C(deg_>(v), 2) IDs — the communication-bound
/// blowup Table III demonstrates.
PregelTcResult PregelTriangleCount(const Graph& graph,
                                   const PregelOptions& opts);

struct PregelMcfResult {
  PregelRunStats stats;
  std::vector<VertexId> best_clique;
};

/// Vertex-centric maximum clique (branch-and-bound flavor of paper ref [24]):
/// clique candidate sets travel as messages up the ID order; every vertex
/// extends the sets it can join and forwards them. Materializes one message
/// per clique-prefix — the memory blowup of Table III.
PregelMcfResult PregelMaxClique(const Graph& graph, const PregelOptions& opts);

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_PREGEL_APPS_H_
