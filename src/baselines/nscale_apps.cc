#include "baselines/nscale_apps.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "apps/kernel_simd.h"
#include "apps/kernels.h"
#include "util/logging.h"

namespace gthinker::baselines {

NScaleTcResult NScaleTriangleCount(const Graph& graph,
                                   const NScaleEngine::Options& opts) {
  NScaleEngine engine;
  std::atomic<uint64_t> triangles{0};
  auto filter = [](VertexId v, const AdjList& adj) {
    // Only roots with at least two larger neighbors can close a triangle.
    const auto gt = std::upper_bound(adj.begin(), adj.end(), v);
    return adj.end() - gt >= 2;
  };
  auto mine = [&graph, &triangles](VertexId root,
                                   const Subgraph<Vertex<AdjList>>& ego) {
    const auto [rb, re] = graph.GreaterRange(root);
    const size_t nr = static_cast<size_t>(re - rb);
    uint64_t local = 0;
    // Bitmap of Γ_>(root), probed by each neighbor's Γ_> span in place —
    // no AdjList copy per neighbor.
    simd::HitBits<VertexId> bits;
    const size_t domain = nr > 0 ? static_cast<size_t>(rb[nr - 1]) + 1 : 0;
    const bool use_bits = simd::HitBitsWorthwhile(nr, domain, nr);
    if (use_bits) bits.Build(rb, nr);
    for (const VertexId* u = rb; u != re; ++u) {
      const Vertex<AdjList>* uv = ego.GetVertex(*u);
      if (uv == nullptr) continue;
      const auto it =
          std::upper_bound(uv->value.begin(), uv->value.end(), *u);
      const VertexId* u_gt = uv->value.data() + (it - uv->value.begin());
      const size_t u_len = static_cast<size_t>(uv->value.end() - it);
      local += use_bits ? bits.CountHits(u_gt, u_len)
                        : simd::IntersectAdaptive(rb, nr, u_gt, u_len);
    }
    if (local > 0) triangles.fetch_add(local, std::memory_order_relaxed);
  };
  NScaleTcResult out;
  out.stats = engine.Run(graph, /*k_hops=*/1, filter, mine, opts);
  out.triangles = triangles.load();
  return out;
}

NScaleMcfResult NScaleMaxClique(const Graph& graph,
                                const NScaleEngine::Options& opts) {
  NScaleEngine engine;
  std::mutex best_mutex;
  std::vector<VertexId> best;
  std::atomic<size_t> best_size{0};
  auto filter = [](VertexId v, const AdjList& adj) {
    (void)v;
    return !adj.empty();
  };
  auto mine = [&graph, &best_mutex, &best, &best_size](
                  VertexId root, const Subgraph<Vertex<AdjList>>& ego) {
    // Search the subgraph induced by Γ_>(root), exactly like an MCF task.
    Subgraph<Vertex<AdjList>> g;
    const AdjList ext = graph.GreaterNeighbors(root);
    for (VertexId u : ext) {
      const Vertex<AdjList>* uv = ego.GetVertex(u);
      GT_CHECK(uv != nullptr);
      Vertex<AdjList> nu;
      nu.id = u;
      for (VertexId w : uv->value) {
        if (w > u && std::binary_search(ext.begin(), ext.end(), w)) {
          nu.value.push_back(w);
        }
      }
      g.AddVertex(std::move(nu));
    }
    const size_t bound = best_size.load(std::memory_order_relaxed);
    if (1 + ext.size() <= bound) return;
    const size_t lower = bound > 0 ? bound - 1 : 0;
    std::vector<VertexId> clique =
        MaxCliqueInCompact(CompactFromSubgraph(g), lower);
    if (clique.empty() && bound == 0) clique = {};
    std::vector<VertexId> candidate;
    if (!clique.empty()) {
      candidate = clique;
      candidate.push_back(root);
      std::sort(candidate.begin(), candidate.end());
    } else if (bound == 0) {
      candidate = {root};
    }
    if (candidate.size() > best_size.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(best_mutex);
      if (candidate.size() > best.size()) {
        best = candidate;
        best_size.store(best.size(), std::memory_order_relaxed);
      }
    }
  };
  NScaleMcfResult out;
  out.stats = engine.Run(graph, /*k_hops=*/1, filter, mine, opts);
  std::sort(best.begin(), best.end());
  out.best_clique = best;
  return out;
}

}  // namespace gthinker::baselines
