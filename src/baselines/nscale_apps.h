#ifndef GTHINKER_BASELINES_NSCALE_APPS_H_
#define GTHINKER_BASELINES_NSCALE_APPS_H_

#include <cstdint>
#include <vector>

#include "baselines/nscale_engine.h"
#include "graph/graph.h"

namespace gthinker::baselines {

struct NScaleTcResult {
  NScaleEngine::Result stats;
  uint64_t triangles = 0;
};

/// Triangle counting on NScale: 1-hop ego subgraphs constructed first (disk
/// barrier), then each mined for the triangles rooted at its center.
NScaleTcResult NScaleTriangleCount(const Graph& graph,
                                   const NScaleEngine::Options& opts);

struct NScaleMcfResult {
  NScaleEngine::Result stats;
  std::vector<VertexId> best_clique;
};

/// Maximum clique on NScale: every 1-hop ego net is mined independently
/// after the construction barrier. Without a live global bound (nothing is
/// shared between the phases), pruning is far weaker than G-thinker's
/// aggregator-fed bound.
NScaleMcfResult NScaleMaxClique(const Graph& graph,
                                const NScaleEngine::Options& opts);

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_NSCALE_APPS_H_
