#ifndef GTHINKER_BASELINES_ARABESQUE_APPS_H_
#define GTHINKER_BASELINES_ARABESQUE_APPS_H_

#include <cstdint>
#include <vector>

#include "baselines/arabesque_engine.h"
#include "graph/graph.h"

namespace gthinker::baselines {

struct ArabesqueTcResult {
  ArabesqueEngine::Result stats;
  uint64_t triangles = 0;
};

/// Triangle counting as Arabesque runs it: materialize clique embeddings up
/// to size 3, count the level-3 survivors.
ArabesqueTcResult ArabesqueTriangleCount(const Graph& graph,
                                         const ArabesqueEngine::Options& opts);

struct ArabesqueMcfResult {
  ArabesqueEngine::Result stats;
  std::vector<VertexId> best_clique;
};

/// Maximum clique via the filter-process model (paper §II): the filter keeps
/// clique embeddings, which are expanded level by level until none survive.
/// Every clique of every size is materialized along the way.
ArabesqueMcfResult ArabesqueMaxClique(const Graph& graph,
                                      const ArabesqueEngine::Options& opts);

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_ARABESQUE_APPS_H_
