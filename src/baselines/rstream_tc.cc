#include "baselines/rstream_tc.h"

#include <fcntl.h>
#include <unistd.h>

#include <vector>

#include "apps/kernels.h"
#include "storage/mini_dfs.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gthinker::baselines {

RStreamTc::Result RStreamTc::Run(const Graph& graph, const Options& opts) {
  std::string work_dir = opts.work_dir;
  const bool own_dir = work_dir.empty();
  if (own_dir) work_dir = MakeTempDir("rstream");

  Result result;
  Timer wall;
  const VertexId n = graph.NumVertices();

  // ---- Phase 1: materialize the relations on disk ----
  // adjacency relation: concatenated Γ_>(v) tuples, offsets kept in memory.
  const std::string adj_path = work_dir + "/adjacency.bin";
  const std::string edge_path = work_dir + "/edges.bin";
  std::vector<int64_t> offset(n + 1, 0);
  {
    const int fd = ::open(adj_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    GT_CHECK_GE(fd, 0);
    int64_t pos = 0;
    for (VertexId v = 0; v < n; ++v) {
      offset[v] = pos;
      const AdjList gt = graph.GreaterNeighbors(v);
      const int64_t bytes = static_cast<int64_t>(gt.size() *
                                                 sizeof(VertexId));
      if (bytes > 0) {
        GT_CHECK_EQ(::pwrite(fd, gt.data(), bytes, pos),
                    static_cast<ssize_t>(bytes));
      }
      pos += bytes;
      result.bytes_written += bytes;
    }
    offset[n] = pos;
    ::close(fd);
  }
  {
    const int fd = ::open(edge_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    GT_CHECK_GE(fd, 0);
    std::vector<VertexId> buffer;
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId u : graph.GreaterNeighbors(v)) {
        buffer.push_back(v);
        buffer.push_back(u);
      }
      if (buffer.size() >= 1 << 16) {
        const int64_t bytes =
            static_cast<int64_t>(buffer.size() * sizeof(VertexId));
        GT_CHECK_EQ(::write(fd, buffer.data(), bytes),
                    static_cast<ssize_t>(bytes));
        result.bytes_written += bytes;
        buffer.clear();
      }
    }
    if (!buffer.empty()) {
      const int64_t bytes =
          static_cast<int64_t>(buffer.size() * sizeof(VertexId));
      GT_CHECK_EQ(::write(fd, buffer.data(), bytes),
                  static_cast<ssize_t>(bytes));
      result.bytes_written += bytes;
    }
    ::close(fd);
  }
  result.peak_mem_bytes =
      static_cast<int64_t>(offset.capacity() * sizeof(int64_t)) + (1 << 20);

  // ---- Phase 2: stream E, join both endpoints against the adjacency
  // relation on disk ----
  const int adj_fd = ::open(adj_path.c_str(), O_RDONLY);
  const int edge_fd = ::open(edge_path.c_str(), O_RDONLY);
  GT_CHECK_GE(adj_fd, 0);
  GT_CHECK_GE(edge_fd, 0);

  auto read_gt = [&](VertexId v, AdjList* out) {
    const int64_t bytes = offset[v + 1] - offset[v];
    out->resize(static_cast<size_t>(bytes) / sizeof(VertexId));
    if (bytes > 0) {
      GT_CHECK_EQ(::pread(adj_fd, out->data(), bytes, offset[v]),
                  static_cast<ssize_t>(bytes));
    }
    result.bytes_read += bytes;
    ++result.disk_reads;
  };

  // GRAS-style relational execution: the E ⋈ E join *materializes* its
  // output relation (the wedge-closure tuples, i.e. triangles) on disk, and
  // a final streamed aggregation counts them — just like RStream's phased
  // relational model, where every phase's output relation hits storage.
  const std::string join_path = work_dir + "/join_out.bin";
  const int join_fd =
      ::open(join_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  GT_CHECK_GE(join_fd, 0);

  std::vector<VertexId> edge_buf(1 << 16);
  std::vector<VertexId> join_buf;
  AdjList gt_u, gt_v;
  bool done = false;
  int64_t epos = 0;
  auto flush_join = [&] {
    if (join_buf.empty()) return;
    const int64_t bytes =
        static_cast<int64_t>(join_buf.size() * sizeof(VertexId));
    GT_CHECK_EQ(::write(join_fd, join_buf.data(), bytes),
                static_cast<ssize_t>(bytes));
    result.bytes_written += bytes;
    join_buf.clear();
  };
  while (!done) {
    const ssize_t got = ::pread(edge_fd, edge_buf.data(),
                                edge_buf.size() * sizeof(VertexId), epos);
    GT_CHECK_GE(got, 0);
    if (got == 0) break;
    epos += got;
    result.bytes_read += got;
    const size_t pairs = static_cast<size_t>(got) / (2 * sizeof(VertexId));
    for (size_t i = 0; i < pairs; ++i) {
      const VertexId u = edge_buf[2 * i];
      const VertexId v = edge_buf[2 * i + 1];
      read_gt(u, &gt_u);
      read_gt(v, &gt_v);
      // Materialize (u, v, w) join tuples.
      size_t a = 0, b = 0;
      while (a < gt_u.size() && b < gt_v.size()) {
        if (gt_u[a] < gt_v[b]) {
          ++a;
        } else if (gt_u[a] > gt_v[b]) {
          ++b;
        } else {
          join_buf.push_back(u);
          join_buf.push_back(v);
          join_buf.push_back(gt_u[a]);
          ++a;
          ++b;
        }
      }
      if (join_buf.size() >= (1 << 16)) flush_join();
    }
    if (opts.time_budget_s > 0 && wall.ElapsedSeconds() > opts.time_budget_s) {
      result.timed_out = true;
      done = true;
    }
  }
  flush_join();
  ::close(join_fd);

  // Final phase: stream the join relation back and aggregate.
  if (!result.timed_out) {
    const int agg_fd = ::open(join_path.c_str(), O_RDONLY);
    GT_CHECK_GE(agg_fd, 0);
    int64_t jpos = 0;
    while (true) {
      const ssize_t got = ::pread(agg_fd, edge_buf.data(),
                                  edge_buf.size() * sizeof(VertexId), jpos);
      GT_CHECK_GE(got, 0);
      if (got == 0) break;
      jpos += got;
      result.bytes_read += got;
    }
    // Tuples may straddle read chunks; count over the whole relation.
    GT_CHECK_EQ(jpos % static_cast<int64_t>(3 * sizeof(VertexId)), 0);
    result.triangles =
        static_cast<uint64_t>(jpos) / (3 * sizeof(VertexId));
    ::close(agg_fd);
  }
  ::close(adj_fd);
  ::close(edge_fd);

  result.elapsed_s = wall.ElapsedSeconds();
  if (own_dir) RemoveTree(work_dir);
  return result;
}

}  // namespace gthinker::baselines
