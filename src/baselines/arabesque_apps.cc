#include "baselines/arabesque_apps.h"

#include <atomic>
#include <mutex>

namespace gthinker::baselines {

namespace {

/// Incremental clique filter: the engine only expands embeddings that passed
/// the filter, so it suffices to check the newest (= largest) vertex against
/// the rest.
bool CliqueFilter(const Graph& g, const ArabesqueEngine::Embedding& e) {
  if (e.size() <= 1) return true;
  const VertexId added = e.back();
  for (size_t i = 0; i + 1 < e.size(); ++i) {
    if (!g.HasEdge(e[i], added)) return false;
  }
  return true;
}

}  // namespace

ArabesqueTcResult ArabesqueTriangleCount(
    const Graph& graph, const ArabesqueEngine::Options& opts) {
  ArabesqueEngine engine;
  std::atomic<uint64_t> triangles{0};
  ArabesqueEngine::Options o = opts;
  o.max_level = 3;
  ArabesqueTcResult out;
  out.stats = engine.Run(
      graph, CliqueFilter,
      [&triangles](const ArabesqueEngine::Embedding& e) {
        if (e.size() == 3) triangles.fetch_add(1, std::memory_order_relaxed);
      },
      o);
  out.triangles = triangles.load();
  return out;
}

ArabesqueMcfResult ArabesqueMaxClique(const Graph& graph,
                                      const ArabesqueEngine::Options& opts) {
  ArabesqueEngine engine;
  std::mutex mutex;
  std::vector<VertexId> best;
  ArabesqueMcfResult out;
  out.stats = engine.Run(
      graph, CliqueFilter,
      [&mutex, &best](const ArabesqueEngine::Embedding& e) {
        std::lock_guard<std::mutex> lock(mutex);
        if (e.size() > best.size() ||
            (e.size() == best.size() && e < best)) {
          best = e;
        }
      },
      opts);
  out.best_clique = best;
  return out;
}

}  // namespace gthinker::baselines
