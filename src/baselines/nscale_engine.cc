#include "baselines/nscale_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_set>
#include <vector>

#include "storage/mini_dfs.h"
#include "util/logging.h"
#include "util/serializer.h"
#include "util/timer.h"

namespace gthinker::baselines {

namespace {

/// Per-root construction state shuttled through the round files:
/// (root, collected vertex set, current frontier).
struct RootState {
  VertexId root = 0;
  std::vector<VertexId> collected;
  std::vector<VertexId> frontier;
};

void EncodeState(const RootState& s, Serializer* ser) {
  ser->Write(s.root);
  ser->WriteVector(s.collected);
  ser->WriteVector(s.frontier);
}

Status DecodeState(Deserializer* des, RootState* s) {
  GT_RETURN_IF_ERROR(des->Read(&s->root));
  GT_RETURN_IF_ERROR(des->ReadVector(&s->collected));
  return des->ReadVector(&s->frontier);
}

class RoundFile {
 public:
  static void Write(const std::string& path,
                    const std::vector<RootState>& states, int64_t* bytes) {
    Serializer ser;
    ser.Write<uint64_t>(states.size());
    for (const RootState& s : states) EncodeState(s, &ser);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    GT_CHECK_GE(fd, 0) << "nscale round file " << path;
    GT_CHECK_EQ(::write(fd, ser.data(), ser.size()),
                static_cast<ssize_t>(ser.size()));
    ::close(fd);
    *bytes += static_cast<int64_t>(ser.size());
  }

  static void Read(const std::string& path, std::vector<RootState>* states,
                   int64_t* bytes) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    GT_CHECK_GE(fd, 0) << "nscale round file " << path;
    const off_t size = ::lseek(fd, 0, SEEK_END);
    std::string buf(static_cast<size_t>(size), '\0');
    GT_CHECK_EQ(::pread(fd, buf.data(), buf.size(), 0),
                static_cast<ssize_t>(buf.size()));
    ::close(fd);
    *bytes += static_cast<int64_t>(buf.size());
    Deserializer des(buf);
    uint64_t n = 0;
    GT_CHECK_OK(des.Read(&n));
    states->clear();
    states->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      RootState s;
      GT_CHECK_OK(DecodeState(&des, &s));
      states->push_back(std::move(s));
    }
  }
};

}  // namespace

NScaleEngine::Result NScaleEngine::Run(const Graph& graph, int k_hops,
                                       const RootFilter& filter,
                                       const MineFn& mine,
                                       const Options& opts) {
  GT_CHECK_GE(k_hops, 1);
  std::string work_dir = opts.work_dir;
  const bool own_dir = work_dir.empty();
  if (own_dir) work_dir = MakeTempDir("nscale");

  Result result;
  Timer wall;

  // ---- Phase (i): k MapReduce-style BFS rounds, state on disk ----
  {
    std::vector<RootState> states;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (filter && !filter(v, graph.Neighbors(v))) continue;
      RootState s;
      s.root = v;
      s.collected = {v};
      s.frontier = {v};
      states.push_back(std::move(s));
    }
    std::string path = work_dir + "/round_0.bin";
    RoundFile::Write(path, states, &result.bytes_written);

    for (int round = 1; round <= k_hops; ++round) {
      std::vector<RootState> in;
      RoundFile::Read(path, &in, &result.bytes_read);
      for (RootState& s : in) {
        std::unordered_set<VertexId> have(s.collected.begin(),
                                          s.collected.end());
        std::vector<VertexId> next;
        for (VertexId f : s.frontier) {
          for (VertexId u : graph.Neighbors(f)) {
            if (have.insert(u).second) {
              s.collected.push_back(u);
              next.push_back(u);
            }
          }
        }
        s.frontier = std::move(next);
      }
      path = work_dir + "/round_" + std::to_string(round) + ".bin";
      RoundFile::Write(path, in, &result.bytes_written);
      if (opts.time_budget_s > 0 &&
          wall.ElapsedSeconds() > opts.time_budget_s) {
        result.timed_out = true;
        break;
      }
    }
    result.construct_s = wall.ElapsedSeconds();

    // ---- Phase (ii): barrier, then mine every subgraph ----
    if (!result.timed_out) {
      std::vector<RootState> final_states;
      RoundFile::Read(path, &final_states, &result.bytes_read);
      result.subgraphs = static_cast<int64_t>(final_states.size());
      std::atomic<size_t> next{0};
      std::atomic<bool> stop{false};
      std::vector<std::thread> threads;
      for (int t = 0; t < opts.num_threads; ++t) {
        threads.emplace_back([&] {
          while (!stop.load(std::memory_order_relaxed)) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= final_states.size()) return;
            const RootState& s = final_states[i];
            Subgraph<Vertex<AdjList>> ego;
            for (VertexId v : s.collected) {
              ego.AddVertex({v, graph.Neighbors(v)});
            }
            mine(s.root, ego);
            if (opts.time_budget_s > 0 &&
                wall.ElapsedSeconds() > opts.time_budget_s) {
              stop.store(true, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      result.timed_out = stop.load();
    }
  }
  result.mine_s = wall.ElapsedSeconds() - result.construct_s;
  result.elapsed_s = wall.ElapsedSeconds();
  if (own_dir) RemoveTree(work_dir);
  return result;
}

}  // namespace gthinker::baselines
