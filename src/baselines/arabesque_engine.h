#ifndef GTHINKER_BASELINES_ARABESQUE_ENGINE_H_
#define GTHINKER_BASELINES_ARABESQUE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gthinker::baselines {

/// Level-synchronous filter-process embedding expansion (the Arabesque
/// baseline, paper §II): iteration i materializes *every* embedding with i+1
/// vertices that passed the filter, in memory, then expands each by one
/// adjacent vertex. This is exactly the behaviour the paper criticizes —
/// "Arabesque materializes subgraphs represented by all nodes in the
/// set-enumeration tree" — and the tracked embedding bytes reproduce its
/// memory blowup (Table III's OOM entries, modeled by `mem_cap_bytes`).
///
/// Embeddings are vertex-induced and extended only by neighbors larger than
/// their current maximum (canonicality), which is complete for clique-shaped
/// filters (TC and MCF, the two apps Arabesque ships).
class ArabesqueEngine {
 public:
  using Embedding = std::vector<VertexId>;

  struct Options {
    int num_threads = 2;
    double time_budget_s = 0.0;   // 0 = unlimited
    int64_t mem_cap_bytes = 0;    // 0 = unlimited
    int max_level = 0;            // stop after embeddings of this size; 0 = ∞
  };

  struct Result {
    double elapsed_s = 0.0;
    bool timed_out = false;
    bool mem_exceeded = false;
    int levels = 0;
    int64_t embeddings_materialized = 0;
    int64_t peak_mem_bytes = 0;
  };

  /// `filter` decides whether an embedding survives to be processed and
  /// expanded; `process` consumes every surviving embedding (must be
  /// thread-safe — it runs from worker threads).
  using FilterFn = std::function<bool(const Graph&, const Embedding&)>;
  using ProcessFn = std::function<void(const Embedding&)>;

  Result Run(const Graph& graph, const FilterFn& filter,
             const ProcessFn& process, const Options& opts);
};

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_ARABESQUE_ENGINE_H_
