#include "baselines/gminer_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "storage/mini_dfs.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/mem_tracker.h"
#include "util/serializer.h"
#include "util/timer.h"

namespace gthinker::baselines {

namespace {

uint64_t LshKey(const std::vector<VertexId>& pulls) {
  // Single min-hash over P(t): tasks pulling similar vertex sets tend to get
  // nearby keys, which is the locality G-Miner's queue orders by.
  uint64_t key = ~0ULL;
  for (VertexId v : pulls) key = std::min(key, Mix64(v));
  return key;
}

std::string EncodeTask(const GMinerEngine::TaskRec& task) {
  Serializer ser;
  ser.WriteVector(task.pulls);
  ser.WriteString(task.payload);
  return ser.Release();
}

Status DecodeTask(const std::string& blob, GMinerEngine::TaskRec* task) {
  Deserializer des(blob);
  GT_RETURN_IF_ERROR(des.ReadVector(&task->pulls));
  return des.ReadString(&task->payload);
}

/// Disk-resident LSH-ordered task queue: bodies in an append-only file,
/// (lsh_key -> offset,len) index in memory. Dequeues are random pread()s in
/// key order; inserts are appends. Thread-safe.
class DiskQueue {
 public:
  DiskQueue(const std::string& path, bool fifo_order)
      : fifo_order_(fifo_order) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    GT_CHECK_GE(fd_, 0) << "cannot open disk queue " << path;
  }
  ~DiskQueue() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Insert(const GMinerEngine::TaskRec& task, GMinerEngine::Result* stats) {
    const std::string blob = EncodeTask(task);
    std::lock_guard<std::mutex> lock(mutex_);
    const off_t off = end_;
    ssize_t written = ::pwrite(fd_, blob.data(), blob.size(), off);
    GT_CHECK_EQ(written, static_cast<ssize_t>(blob.size()));
    end_ += static_cast<off_t>(blob.size());
    const uint64_t key = fifo_order_ ? seq_++ : LshKey(task.pulls);
    index_.emplace(key,
                   std::make_pair(off, static_cast<size_t>(blob.size())));
    stats->disk_writes += 1;
    stats->disk_write_bytes += static_cast<int64_t>(blob.size());
  }

  /// Pops up to `max_tasks` bodies in LSH-key order.
  size_t PopBatch(size_t max_tasks, std::vector<GMinerEngine::TaskRec>* out,
                  GMinerEngine::Result* stats) {
    std::vector<std::pair<off_t, size_t>> extents;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (extents.size() < max_tasks && !index_.empty()) {
        extents.push_back(index_.begin()->second);
        index_.erase(index_.begin());
      }
    }
    for (const auto& [off, len] : extents) {
      std::string blob(len, '\0');
      ssize_t got = ::pread(fd_, blob.data(), len, off);
      GT_CHECK_EQ(got, static_cast<ssize_t>(len));
      stats->disk_reads += 1;
      stats->disk_read_bytes += static_cast<int64_t>(len);
      GMinerEngine::TaskRec task;
      GT_CHECK_OK(DecodeTask(blob, &task));
      out->push_back(std::move(task));
    }
    return extents.size();
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::multimap<uint64_t, std::pair<off_t, size_t>> index_;
  const bool fifo_order_;
  uint64_t seq_ = 0;
  int fd_ = -1;
  off_t end_ = 0;
};

/// The shared RCV cache: one mutex, one linear-scanned list (paper §II).
class RcvCache {
 public:
  RcvCache(int64_t capacity, MemTracker* mem)
      : capacity_(capacity), mem_(mem) {}

  ~RcvCache() {
    for (const auto& [id, adj] : entries_) {
      mem_->Release(
          static_cast<int64_t>(adj.capacity() * sizeof(VertexId) + 16));
    }
  }

  /// Returns the adjacency list of `v` by value; fetches via `load` on miss.
  AdjList Get(VertexId v, const std::function<AdjList()>& load,
              GMinerEngine::Result* stats) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == v) {  // linear scan — the concurrency bottleneck
        ++stats->cache_hits;
        entries_.splice(entries_.begin(), entries_, it);  // LRU bump
        return it->second;
      }
    }
    ++stats->cache_misses;
    AdjList adj = load();
    mem_->Consume(
        static_cast<int64_t>(adj.capacity() * sizeof(VertexId) + 16));
    entries_.emplace_front(v, adj);
    while (static_cast<int64_t>(entries_.size()) > capacity_) {
      mem_->Release(static_cast<int64_t>(
          entries_.back().second.capacity() * sizeof(VertexId) + 16));
      entries_.pop_back();
    }
    return adj;
  }

 private:
  std::mutex mutex_;
  std::list<std::pair<VertexId, AdjList>> entries_;
  const int64_t capacity_;
  MemTracker* mem_;
};

}  // namespace

GMinerEngine::Result GMinerEngine::Run(const Graph& graph,
                                       const SpawnFn& spawn,
                                       const ComputeFn& compute,
                                       const Options& opts) {
  GT_CHECK_GT(opts.num_workers, 0);
  GT_CHECK_GT(opts.threads_per_worker, 0);
  std::string work_dir = opts.work_dir;
  const bool own_dir = work_dir.empty();
  if (own_dir) work_dir = MakeTempDir("gminer");

  Result result;
  Timer wall;
  MemTracker mem;
  mem.Consume(graph.MemoryBytes());

  const int W = opts.num_workers;
  std::vector<std::unique_ptr<DiskQueue>> queues;
  std::vector<std::unique_ptr<RcvCache>> caches;
  std::vector<Result> worker_stats(W);
  for (int w = 0; w < W; ++w) {
    queues.push_back(std::make_unique<DiskQueue>(
        work_dir + "/queue_" + std::to_string(w) + ".bin", opts.fifo_order));
    caches.push_back(
        std::make_unique<RcvCache>(opts.rcv_cache_capacity, &mem));
  }

  // Phase 1: generate ALL tasks up front into the disk queues (G-Miner's
  // design; G-thinker instead spawns on demand as pool space frees up).
  {
    std::vector<TaskRec> tasks;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      tasks.clear();
      spawn(v, graph.Neighbors(v), &tasks);
      const int w = static_cast<int>(v % static_cast<VertexId>(W));
      for (const TaskRec& t : tasks) queues[w]->Insert(t, &worker_stats[w]);
    }
  }

  // Phase 2: workers drain their queues. A thread seeing an empty queue may
  // not exit while a sibling is still computing — its children re-enter the
  // disk queue.
  std::atomic<bool> timeout{false};
  std::vector<std::unique_ptr<std::atomic<int>>> in_flight;
  for (int w = 0; w < W; ++w) {
    in_flight.push_back(std::make_unique<std::atomic<int>>(0));
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < W; ++w) {
    for (int t = 0; t < opts.threads_per_worker; ++t) {
      threads.emplace_back([&, w] {
        Result local;
        std::vector<TaskRec> batch;
        std::vector<AdjList> frontier;
        std::vector<TaskRec> children;
        while (!timeout.load(std::memory_order_relaxed)) {
          batch.clear();
          in_flight[w]->fetch_add(1, std::memory_order_acq_rel);
          if (queues[w]->PopBatch(opts.batch_size, &batch, &local) == 0) {
            in_flight[w]->fetch_sub(1, std::memory_order_acq_rel);
            if (in_flight[w]->load(std::memory_order_acquire) == 0 &&
                queues[w]->Empty()) {
              break;  // no tasks and no producer can add more
            }
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            continue;
          }
          for (TaskRec& task : batch) {
            frontier.clear();
            for (VertexId v : task.pulls) {
              if (static_cast<int>(v % static_cast<VertexId>(W)) == w) {
                frontier.push_back(graph.Neighbors(v));
              } else {
                frontier.push_back(caches[w]->Get(
                    v, [&graph, v] { return graph.Neighbors(v); }, &local));
              }
            }
            children.clear();
            compute(task, frontier, &children);
            ++local.tasks_processed;
            for (const TaskRec& child : children) {
              queues[w]->Insert(child, &local);
              ++local.reinserts;
            }
          }
          in_flight[w]->fetch_sub(1, std::memory_order_acq_rel);
          if (opts.time_budget_s > 0 &&
              wall.ElapsedSeconds() > opts.time_budget_s) {
            timeout.store(true, std::memory_order_relaxed);
          }
        }
        static std::mutex merge_mutex;
        std::lock_guard<std::mutex> lock(merge_mutex);
        result.tasks_processed += local.tasks_processed;
        result.reinserts += local.reinserts;
        result.disk_reads += local.disk_reads;
        result.disk_writes += local.disk_writes;
        result.disk_read_bytes += local.disk_read_bytes;
        result.disk_write_bytes += local.disk_write_bytes;
        result.cache_hits += local.cache_hits;
        result.cache_misses += local.cache_misses;
      });
    }
  }
  for (auto& th : threads) th.join();

  for (const Result& ws : worker_stats) {
    result.disk_writes += ws.disk_writes;
    result.disk_write_bytes += ws.disk_write_bytes;
  }
  result.timed_out = timeout.load();
  result.peak_mem_bytes = mem.peak();
  result.elapsed_s = wall.ElapsedSeconds();

  caches.clear();
  queues.clear();
  if (own_dir) RemoveTree(work_dir);
  return result;
}

}  // namespace gthinker::baselines
