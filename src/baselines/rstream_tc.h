#ifndef GTHINKER_BASELINES_RSTREAM_TC_H_
#define GTHINKER_BASELINES_RSTREAM_TC_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace gthinker::baselines {

/// The RStream baseline (paper §II/§VI): a single-machine *out-of-core*
/// triangle counter in the GRAS relational style. The edge relation and the
/// per-vertex adjacency relation are materialized on disk; counting streams
/// the edge relation and performs the E ⋈ E join by reading both endpoints'
/// adjacency tuples back from disk — two random reads per edge. Only the
/// offset index lives in memory. This is IO-bound by construction, which is
/// the comparison the paper draws ("RStream runs out-of-core and is
/// IO-bound").
class RStreamTc {
 public:
  struct Options {
    std::string work_dir;       // empty = fresh temp dir
    double time_budget_s = 0.0; // 0 = unlimited
  };

  struct Result {
    double elapsed_s = 0.0;
    bool timed_out = false;
    uint64_t triangles = 0;
    int64_t bytes_written = 0;
    int64_t bytes_read = 0;
    int64_t disk_reads = 0;
    int64_t peak_mem_bytes = 0;  // offset index + streaming buffers
  };

  static Result Run(const Graph& graph, const Options& opts);
};

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_RSTREAM_TC_H_
