#ifndef GTHINKER_BASELINES_GMINER_ENGINE_H_
#define GTHINKER_BASELINES_GMINER_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gthinker::baselines {

/// The G-Miner baseline (paper §II). Faithful to the two design points the
/// paper identifies as its bottlenecks:
///
///  1. All tasks are generated up front into a *disk-resident* priority
///     queue ordered by an LSH key over each task's pull set P(t); task
///     bodies live on disk and every dequeue is a random read. Partially
///     computed tasks (decomposition children, next-hop continuations) are
///     *re-inserted* into the disk queue — "reinserting a partially
///     processed task ... becomes the dominant cost for a large graph".
///
///  2. Remote vertices are cached in a single shared RCV list per worker,
///     guarded by one mutex and searched linearly — "a common list ...
///     which becomes a bottleneck of task concurrency".
class GMinerEngine {
 public:
  struct Options {
    int num_workers = 2;
    int threads_per_worker = 2;
    double time_budget_s = 0.0;          // 0 = unlimited
    int64_t rcv_cache_capacity = 4096;   // entries per worker
    int batch_size = 32;                 // tasks per dequeue
    std::string work_dir;                // empty = fresh temp dir
    /// ABLATION ONLY (bench/ablation_taskorder): dequeue in FIFO insertion
    /// order instead of LSH order, isolating the effect of G-Miner's
    /// locality-sensitive task ordering.
    bool fifo_order = false;
  };

  struct Result {
    double elapsed_s = 0.0;
    bool timed_out = false;
    int64_t peak_mem_bytes = 0;
    int64_t tasks_processed = 0;
    int64_t reinserts = 0;
    int64_t disk_reads = 0;
    int64_t disk_writes = 0;
    int64_t disk_read_bytes = 0;
    int64_t disk_write_bytes = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
  };

  /// A queued task: the vertices it needs pulled before computing, plus an
  /// opaque app payload.
  struct TaskRec {
    std::vector<VertexId> pulls;
    std::string payload;
  };

  /// Generates the initial tasks for one vertex (all tasks are generated
  /// up front, unlike G-thinker's on-demand spawning).
  using SpawnFn = std::function<void(VertexId v, const AdjList& adj,
                                     std::vector<TaskRec>* out)>;

  /// Computes one task iteration. `frontier[i]` is the adjacency list of
  /// pulls[i] (a copy — entries may be evicted from the shared cache at any
  /// time). New/continuation tasks appended to `children` are re-inserted
  /// into the disk queue.
  using ComputeFn = std::function<void(TaskRec& task,
                                       const std::vector<AdjList>& frontier,
                                       std::vector<TaskRec>* children)>;

  Result Run(const Graph& graph, const SpawnFn& spawn,
             const ComputeFn& compute, const Options& opts);
};

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_GMINER_ENGINE_H_
