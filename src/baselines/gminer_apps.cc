#include "baselines/gminer_apps.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_set>

#include "apps/kernel_simd.h"
#include "core/subgraph.h"
#include "core/vertex.h"
#include "util/logging.h"
#include "util/serializer.h"

namespace gthinker::baselines {

namespace {

AdjList GreaterOf(const AdjList& adj, VertexId v) {
  auto it = std::upper_bound(adj.begin(), adj.end(), v);
  return AdjList(it, adj.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// Triangle counting.
// ---------------------------------------------------------------------------

GMinerTcResult GMinerTriangleCount(const Graph& graph,
                                   const GMinerEngine::Options& opts) {
  GMinerEngine engine;
  std::atomic<uint64_t> triangles{0};

  auto spawn = [](VertexId v, const AdjList& adj,
                  std::vector<GMinerEngine::TaskRec>* out) {
    AdjList gt = GreaterOf(adj, v);
    if (gt.size() < 2) return;
    GMinerEngine::TaskRec task;
    task.pulls = std::move(gt);  // root's Γ_> doubles as the candidate set
    out->push_back(std::move(task));
  };

  auto compute = [&triangles](GMinerEngine::TaskRec& task,
                              const std::vector<AdjList>& frontier,
                              std::vector<GMinerEngine::TaskRec>*) {
    const AdjList& root_gt = task.pulls;
    uint64_t local = 0;
    // Reuse one membership bitmap of Γ_>(root) across the whole frontier;
    // probe each Γ_>(u) in place instead of copying it out first.
    simd::HitBits<VertexId> bits;
    const size_t domain =
        root_gt.empty() ? 0 : static_cast<size_t>(root_gt.back()) + 1;
    const bool use_bits =
        simd::HitBitsWorthwhile(root_gt.size(), domain, frontier.size());
    if (use_bits) bits.Build(root_gt.data(), root_gt.size());
    for (size_t i = 0; i < frontier.size(); ++i) {
      const AdjList& adj = frontier[i];
      auto it = std::upper_bound(adj.begin(), adj.end(), task.pulls[i]);
      const VertexId* u_gt = adj.data() + (it - adj.begin());
      const size_t u_len = static_cast<size_t>(adj.end() - it);
      local += use_bits
                   ? bits.CountHits(u_gt, u_len)
                   : simd::IntersectAdaptive(root_gt.data(), root_gt.size(),
                                             u_gt, u_len);
    }
    if (local > 0) triangles.fetch_add(local, std::memory_order_relaxed);
  };

  GMinerTcResult out;
  out.stats = engine.Run(graph, spawn, compute, opts);
  out.triangles = triangles.load();
  return out;
}

// ---------------------------------------------------------------------------
// Maximum clique.
// ---------------------------------------------------------------------------

namespace {

using CliqueSubgraph = Subgraph<Vertex<AdjList>>;

std::string EncodeMcfPayload(const std::vector<VertexId>& s,
                             const CliqueSubgraph* g) {
  Serializer ser;
  ser.Write<uint8_t>(g != nullptr ? 1 : 0);
  ser.WriteVector(s);
  if (g != nullptr) g->Serialize(ser);
  return ser.Release();
}

void DecodeMcfPayload(const std::string& payload, std::vector<VertexId>* s,
                      bool* has_subgraph, CliqueSubgraph* g) {
  Deserializer des(payload);
  uint8_t flag = 0;
  GT_CHECK_OK(des.Read(&flag));
  GT_CHECK_OK(des.ReadVector(s));
  *has_subgraph = flag != 0;
  if (*has_subgraph) GT_CHECK_OK(g->Deserialize(des));
}

}  // namespace

GMinerMcfResult GMinerMaxClique(const Graph& graph, size_t tau,
                                const GMinerEngine::Options& opts) {
  GMinerEngine engine;
  std::mutex best_mutex;
  std::vector<VertexId> best;
  std::atomic<size_t> best_size{0};

  auto record = [&](const std::vector<VertexId>& clique) {
    if (clique.size() <= best_size.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(best_mutex);
    if (clique.size() > best.size()) {
      best = clique;
      best_size.store(best.size(), std::memory_order_relaxed);
    }
  };

  auto spawn = [&best_size, &record](VertexId v, const AdjList& adj,
                                     std::vector<GMinerEngine::TaskRec>* out) {
    AdjList gt = GreaterOf(adj, v);
    if (gt.empty()) {
      record({v});
      return;
    }
    if (1 + gt.size() <= best_size.load(std::memory_order_relaxed)) return;
    GMinerEngine::TaskRec task;
    task.payload = EncodeMcfPayload({v}, nullptr);
    task.pulls = std::move(gt);
    out->push_back(std::move(task));
  };

  auto compute = [&graph, &record, &best_size, tau](
                     GMinerEngine::TaskRec& task,
                     const std::vector<AdjList>& frontier,
                     std::vector<GMinerEngine::TaskRec>* children) {
    std::vector<VertexId> s;
    bool has_subgraph = false;
    CliqueSubgraph g;
    DecodeMcfPayload(task.payload, &s, &has_subgraph, &g);

    if (!has_subgraph) {
      // Build ext(S)-induced subgraph from the pulled adjacency lists,
      // trimming each to Γ_> within ext (same construction as the G-thinker
      // app, paper Fig. 5 line 2).
      const AdjList& ext = task.pulls;
      for (size_t i = 0; i < frontier.size(); ++i) {
        Vertex<AdjList> nu;
        nu.id = task.pulls[i];
        for (VertexId w : GreaterOf(frontier[i], nu.id)) {
          if (std::binary_search(ext.begin(), ext.end(), w)) {
            nu.value.push_back(w);
          }
        }
        g.AddVertex(std::move(nu));
      }
    }

    const size_t smax = best_size.load(std::memory_order_relaxed);
    if (g.NumVertices() > tau) {
      for (const Vertex<AdjList>& u : g.vertices()) {
        if (s.size() + 1 + u.value.size() <= smax) continue;
        std::vector<VertexId> s2 = s;
        s2.push_back(u.id);
        CliqueSubgraph g2;
        const AdjList& ext = u.value;
        for (VertexId w : ext) {
          const Vertex<AdjList>* wv = g.GetVertex(w);
          GT_CHECK(wv != nullptr);
          Vertex<AdjList> nw;
          nw.id = w;
          for (VertexId x : wv->value) {
            if (std::binary_search(ext.begin(), ext.end(), x)) {
              nw.value.push_back(x);
            }
          }
          g2.AddVertex(std::move(nw));
        }
        // The child goes back through the disk queue (the G-Miner cost).
        GMinerEngine::TaskRec child;
        child.payload = EncodeMcfPayload(s2, &g2);
        children->push_back(std::move(child));
      }
      return;
    }

    if (s.size() > smax) record(s);
    if (s.size() + g.NumVertices() <= smax) return;
    const size_t lower = smax > s.size() ? smax - s.size() : 0;
    std::vector<VertexId> clique =
        MaxCliqueInCompact(CompactFromSubgraph(g), lower);
    if (!clique.empty()) {
      std::vector<VertexId> candidate = s;
      candidate.insert(candidate.end(), clique.begin(), clique.end());
      std::sort(candidate.begin(), candidate.end());
      record(candidate);
    }
  };

  GMinerMcfResult out;
  out.stats = engine.Run(graph, spawn, compute, opts);
  std::sort(best.begin(), best.end());
  out.best_clique = best;
  return out;
}

// ---------------------------------------------------------------------------
// Subgraph matching.
// ---------------------------------------------------------------------------

namespace {

using MatchSubgraph = Subgraph<Vertex<LabeledAdj>>;

std::string EncodeMatchPayload(uint8_t hop, VertexId root,
                               const MatchSubgraph& g) {
  Serializer ser;
  ser.Write(hop);
  ser.Write(root);
  g.Serialize(ser);
  return ser.Release();
}

}  // namespace

GMinerMatchResult GMinerMatch(const Graph& graph,
                              const std::vector<Label>& labels,
                              const QueryGraph& query,
                              const GMinerEngine::Options& opts) {
  GT_CHECK(query.IsValidPlan());
  GMinerEngine engine;
  std::atomic<uint64_t> matches{0};
  const int depth = query.DepthFromRoot();

  auto labeled_value = [&graph, &labels, &query](VertexId v) {
    LabeledAdj value;
    value.label = labels[v];
    for (VertexId u : graph.Neighbors(v)) {
      if (query.UsesLabel(labels[u])) {
        value.adj.push_back(LabeledNbr{u, labels[u]});
      }
    }
    return value;
  };

  auto spawn = [&labels, &query, &labeled_value, depth](
                   VertexId v, const AdjList& /*adj*/,
                   std::vector<GMinerEngine::TaskRec>* out) {
    if (labels[v] != query.labels[0]) return;
    Vertex<LabeledAdj> root;
    root.id = v;
    root.value = labeled_value(v);
    if (query.NumVertices() > 1 && root.value.adj.empty()) return;
    MatchSubgraph g;
    GMinerEngine::TaskRec task;
    if (depth >= 1) {
      for (const LabeledNbr& nbr : root.value.adj) {
        task.pulls.push_back(nbr.id);
      }
    }
    g.AddVertex(std::move(root));
    task.payload = EncodeMatchPayload(/*hop=*/0, v, g);
    out->push_back(std::move(task));
  };

  auto compute = [&matches, &query, &labeled_value, depth](
                     GMinerEngine::TaskRec& task,
                     const std::vector<AdjList>& /*frontier*/,
                     std::vector<GMinerEngine::TaskRec>* children) {
    Deserializer des(task.payload);
    uint8_t hop = 0;
    VertexId root = 0;
    MatchSubgraph g;
    GT_CHECK_OK(des.Read(&hop));
    GT_CHECK_OK(des.Read(&root));
    GT_CHECK_OK(g.Deserialize(des));
    // Materialize the pulled vertices (labels/adjacency via the shared
    // table, standing in for the partitioned store).
    for (VertexId v : task.pulls) {
      if (!g.HasVertex(v)) {
        Vertex<LabeledAdj> nv;
        nv.id = v;
        nv.value = labeled_value(v);
        g.AddVertex(std::move(nv));
      }
    }
    if (static_cast<int>(hop) + 1 < depth) {
      // Continuation: pull the next hop through the disk queue again.
      GMinerEngine::TaskRec child;
      std::unordered_set<VertexId> requested;
      for (VertexId v : task.pulls) {
        const Vertex<LabeledAdj>* pv = g.GetVertex(v);
        for (const LabeledNbr& nbr : pv->value.adj) {
          if (!g.HasVertex(nbr.id) && requested.insert(nbr.id).second) {
            child.pulls.push_back(nbr.id);
          }
        }
      }
      if (!child.pulls.empty()) {
        child.payload = EncodeMatchPayload(hop + 1, root, g);
        children->push_back(std::move(child));
        return;
      }
    }
    const CompactLabeledGraph cg = CompactFromLabeledSubgraph(g);
    GT_CHECK_EQ(cg.ids[0], root);
    const uint64_t count = CountMatchesFromRoot(cg, query, /*root=*/0);
    if (count > 0) matches.fetch_add(count, std::memory_order_relaxed);
  };

  GMinerMatchResult out;
  out.stats = engine.Run(graph, spawn, compute, opts);
  out.matches = matches.load();
  return out;
}

}  // namespace gthinker::baselines
