#ifndef GTHINKER_BASELINES_GMINER_APPS_H_
#define GTHINKER_BASELINES_GMINER_APPS_H_

#include <cstdint>
#include <vector>

#include "apps/kernels.h"
#include "baselines/gminer_engine.h"
#include "graph/graph.h"

namespace gthinker::baselines {

struct GMinerTcResult {
  GMinerEngine::Result stats;
  uint64_t triangles = 0;
};

/// Triangle counting on the G-Miner engine: one task per vertex pulling
/// Γ_>(v), intersections on dequeue.
GMinerTcResult GMinerTriangleCount(const Graph& graph,
                                   const GMinerEngine::Options& opts);

struct GMinerMcfResult {
  GMinerEngine::Result stats;
  std::vector<VertexId> best_clique;
};

/// Maximum clique on the G-Miner engine: same decompose-or-mine logic as the
/// G-thinker app (threshold τ), but every decomposition child goes back
/// through the disk-resident queue — the re-insertion cost the paper calls
/// dominant.
GMinerMcfResult GMinerMaxClique(const Graph& graph, size_t tau,
                                const GMinerEngine::Options& opts);

struct GMinerMatchResult {
  GMinerEngine::Result stats;
  uint64_t matches = 0;
};

/// Subgraph matching on the G-Miner engine: hop-by-hop neighborhood
/// collection with each continuation re-inserted into the disk queue.
GMinerMatchResult GMinerMatch(const Graph& graph,
                              const std::vector<Label>& labels,
                              const QueryGraph& query,
                              const GMinerEngine::Options& opts);

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_GMINER_APPS_H_
