#ifndef GTHINKER_BASELINES_PREGEL_ENGINE_H_
#define GTHINKER_BASELINES_PREGEL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/codec.h"
#include "core/vertex.h"
#include "graph/graph.h"
#include "util/logging.h"
#include "util/mem_tracker.h"
#include "util/serializer.h"
#include "util/timer.h"

namespace gthinker::baselines {

/// Vertex-centric BSP engine (the Giraph/Pregel baseline of paper §VI).
/// Vertices are hash-partitioned across `num_workers` partitions, each driven
/// by its own thread per superstep; all cross-vertex communication is
/// *serialized* into per-partition byte buffers at the barrier, so the
/// message volume — the thing that makes vertex-centric subgraph mining
/// IO/memory-bound — is measured in real bytes and counted against the
/// memory cap (the stand-in for Giraph's OOM failures in Table III).
///
/// MsgT serializes through Codec<MsgT> (core/codec.h; arithmetic types work
/// out of the box, other types specialize Codec or keep legacy overloads).
template <typename ValueT, typename MsgT>
class PregelEngine {
 public:
  struct Options {
    int num_workers = 2;
    double time_budget_s = 0.0;     // 0 = unlimited
    int64_t mem_cap_bytes = 0;      // 0 = unlimited; exceeded => abort
    int max_supersteps = 10'000;
  };

  struct Result {
    double elapsed_s = 0.0;
    bool timed_out = false;
    bool mem_exceeded = false;
    int supersteps = 0;
    int64_t peak_mem_bytes = 0;
    int64_t messages_sent = 0;
    int64_t message_bytes = 0;
  };

  /// Per-vertex compute context: send messages, vote to halt.
  class Context {
   public:
    int superstep() const { return superstep_; }

    void Send(VertexId dst, const MsgT& msg) {
      const int part = static_cast<int>(dst % num_partitions_);
      Serializer& out = (*outbox_)[part];
      const size_t before = out.size();
      out.Write(dst);
      Codec<MsgT>::Encode(out, msg);
      outbox_bytes_->fetch_add(static_cast<int64_t>(out.size() - before),
                               std::memory_order_relaxed);
      ++*messages_;
    }

    void VoteToHalt() { *halted_ = true; }

   private:
    template <typename V, typename M>
    friend class PregelEngine;
    int superstep_ = 0;
    uint32_t num_partitions_ = 1;
    std::vector<Serializer>* outbox_ = nullptr;
    std::atomic<int64_t>* outbox_bytes_ = nullptr;
    int64_t* messages_ = nullptr;
    bool* halted_ = nullptr;
  };

  using ComputeFn = std::function<void(VertexId v, const AdjList& adj,
                                       ValueT& value,
                                       const std::vector<MsgT>& messages,
                                       Context& ctx)>;

  Result Run(const Graph& graph, ComputeFn compute, const Options& opts) {
    GT_CHECK_GT(opts.num_workers, 0);
    const int W = opts.num_workers;
    const VertexId n = graph.NumVertices();

    std::vector<ValueT> values(n);
    // uint8_t (not vector<bool>): partitions write disjoint indices in
    // parallel, which bit-packing would turn into data races.
    std::vector<uint8_t> halted(n, 0);
    // inbox[w]: decoded messages for partition w's vertices this superstep.
    std::vector<std::unordered_map<VertexId, std::vector<MsgT>>> inbox(W);
    // pending[src][dst]: encoded outgoing buffers, merged at the barrier.
    std::vector<std::vector<Serializer>> outbox(W);
    for (int w = 0; w < W; ++w) outbox[w].resize(W);

    MemTracker mem;
    mem.Consume(static_cast<int64_t>(n) * (sizeof(ValueT) + 1) +
                graph.MemoryBytes() / std::max(W, 1));

    Result result;
    Timer wall;
    std::vector<int64_t> msgs_per_worker(W, 0);
    bool anything_active = true;

    for (int step = 0; step < opts.max_supersteps && anything_active;
         ++step) {
      result.supersteps = step + 1;
      // ---- compute phase (one thread per partition) ----
      std::vector<std::thread> threads;
      std::atomic<int64_t> outbox_bytes{0};
      std::atomic<bool> abort{false};
      for (int w = 0; w < W; ++w) {
        threads.emplace_back([&, w] {
          for (VertexId v = static_cast<VertexId>(w); v < n;
               v += static_cast<VertexId>(W)) {
            if (abort.load(std::memory_order_relaxed)) return;
            auto it = inbox[w].find(v);
            const bool has_msgs = it != inbox[w].end();
            if (halted[v] != 0 && !has_msgs) continue;
            halted[v] = 0;
            static const std::vector<MsgT> kNoMsgs;
            const std::vector<MsgT>& msgs = has_msgs ? it->second : kNoMsgs;
            Context ctx;
            ctx.superstep_ = step;
            ctx.num_partitions_ = static_cast<uint32_t>(W);
            ctx.outbox_ = &outbox[w];
            ctx.outbox_bytes_ = &outbox_bytes;
            ctx.messages_ = &msgs_per_worker[w];
            bool vote = false;
            ctx.halted_ = &vote;
            compute(v, graph.Neighbors(v), values[v], msgs, ctx);
            if (vote) halted[v] = 1;
            // A single superstep can explode (clique-prefix fan-out); abort
            // mid-superstep once the outbox alone exceeds the cap.
            if (opts.mem_cap_bytes > 0 &&
                mem.current() + outbox_bytes.load(std::memory_order_relaxed) >
                    opts.mem_cap_bytes) {
              abort.store(true, std::memory_order_relaxed);
            }
            if ((v & 0xff) == 0 && opts.time_budget_s > 0 &&
                wall.ElapsedSeconds() > opts.time_budget_s) {
              abort.store(true, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      // Record the outbox spike against the tracker so peaks are honest.
      mem.Consume(outbox_bytes.load());
      mem.Release(outbox_bytes.load());
      if (abort.load()) {
        const bool over_cap =
            opts.mem_cap_bytes > 0 && mem.peak() > opts.mem_cap_bytes;
        result.mem_exceeded = over_cap;
        result.timed_out = !over_cap;
        result.peak_mem_bytes = mem.peak();
        for (int64_t m : msgs_per_worker) result.messages_sent += m;
        result.elapsed_s = wall.ElapsedSeconds();
        return result;
      }

      // ---- barrier: release inboxes, deliver outboxes ----
      auto inbox_cost = [](const std::vector<MsgT>& msgs) {
        int64_t bytes = static_cast<int64_t>(msgs.capacity() * sizeof(MsgT));
        for (const MsgT& m : msgs) bytes += Codec<MsgT>::Bytes(m);
        return bytes;
      };
      int64_t inbox_bytes = 0;
      for (auto& box : inbox) {
        for (auto& [v, msgs] : box) inbox_bytes += inbox_cost(msgs);
        box.clear();
      }
      mem.Release(inbox_bytes);

      int64_t delivered_bytes = 0;
      anything_active = false;
      for (int src = 0; src < W; ++src) {
        for (int dst = 0; dst < W; ++dst) {
          Serializer& buf = outbox[src][dst];
          if (buf.size() == 0) continue;
          delivered_bytes += static_cast<int64_t>(buf.size());
          Deserializer des(buf);
          while (!des.AtEnd()) {
            VertexId v = 0;
            GT_CHECK_OK(des.Read(&v));
            MsgT msg;
            GT_CHECK_OK(Codec<MsgT>::Decode(des, &msg));
            inbox[dst][v].push_back(std::move(msg));
          }
          buf.Clear();
        }
      }
      result.message_bytes += delivered_bytes;
      // Inbox memory (decoded) stays live through the next superstep.
      int64_t next_inbox_bytes = 0;
      for (auto& box : inbox) {
        for (auto& [v, msgs] : box) next_inbox_bytes += inbox_cost(msgs);
      }
      // Released at the next barrier, once those messages are consumed.
      mem.Consume(next_inbox_bytes);

      for (int w = 0; w < W; ++w) {
        if (!inbox[w].empty()) anything_active = true;
      }
      if (!anything_active) {
        // Also active if some vertex did not vote to halt.
        for (VertexId v = 0; v < n && !anything_active; ++v) {
          if (halted[v] == 0) anything_active = true;
        }
      }

      if (opts.mem_cap_bytes > 0 && mem.peak() > opts.mem_cap_bytes) {
        result.mem_exceeded = true;
        break;
      }
      if (opts.time_budget_s > 0 &&
          wall.ElapsedSeconds() > opts.time_budget_s) {
        result.timed_out = true;
        break;
      }
    }

    for (int64_t m : msgs_per_worker) result.messages_sent += m;
    result.peak_mem_bytes = mem.peak();
    result.elapsed_s = wall.ElapsedSeconds();
    return result;
  }
};

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_PREGEL_ENGINE_H_
