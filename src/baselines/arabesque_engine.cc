#include "baselines/arabesque_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/logging.h"
#include "util/mem_tracker.h"
#include "util/timer.h"

namespace gthinker::baselines {

namespace {

int64_t LevelBytes(const std::vector<ArabesqueEngine::Embedding>& level) {
  int64_t bytes =
      static_cast<int64_t>(level.capacity() *
                           sizeof(ArabesqueEngine::Embedding));
  for (const auto& e : level) {
    bytes += static_cast<int64_t>(e.capacity() * sizeof(VertexId));
  }
  return bytes;
}

}  // namespace

ArabesqueEngine::Result ArabesqueEngine::Run(const Graph& graph,
                                             const FilterFn& filter,
                                             const ProcessFn& process,
                                             const Options& opts) {
  GT_CHECK_GT(opts.num_threads, 0);
  Result result;
  Timer wall;
  MemTracker mem;
  mem.Consume(graph.MemoryBytes());  // every machine loads the whole graph

  // Level 1: single-vertex embeddings.
  std::vector<Embedding> current;
  current.reserve(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    Embedding e{v};
    if (filter(graph, e)) {
      process(e);
      current.push_back(std::move(e));
    }
  }
  result.embeddings_materialized += static_cast<int64_t>(current.size());
  mem.Consume(LevelBytes(current));
  result.levels = 1;

  while (!current.empty()) {
    if (opts.max_level > 0 && result.levels >= opts.max_level) break;
    // Expand every embedding by one adjacent vertex larger than its max.
    const int T = opts.num_threads;
    std::vector<std::vector<Embedding>> partial(T);
    std::vector<std::thread> threads;
    std::atomic<bool> abort{false};
    for (int t = 0; t < T; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = t; i < current.size(); i += T) {
          if (abort.load(std::memory_order_relaxed)) return;
          const Embedding& e = current[i];
          const VertexId max_v = e.back();
          // Candidate extensions: neighbors of any member, > max(e).
          for (VertexId member : e) {
            const AdjList& adj = graph.Neighbors(member);
            for (auto it = std::upper_bound(adj.begin(), adj.end(), max_v);
                 it != adj.end(); ++it) {
              const VertexId cand = *it;
              // Dedup: count cand only via its smallest adjacent member.
              bool first_anchor = true;
              for (VertexId other : e) {
                if (other == member) break;
                if (graph.HasEdge(other, cand)) {
                  first_anchor = false;
                  break;
                }
              }
              if (!first_anchor) continue;
              Embedding grown = e;
              grown.push_back(cand);
              if (filter(graph, grown)) {
                process(grown);
                partial[t].push_back(std::move(grown));
              }
            }
          }
          // Rough incremental accounting so the cap triggers mid-level too.
          if ((i & 0x3ff) == 0 && opts.mem_cap_bytes > 0 &&
              mem.peak() > opts.mem_cap_bytes) {
            abort.store(true, std::memory_order_relaxed);
          }
          if ((i & 0xfff) == 0 && opts.time_budget_s > 0 &&
              wall.ElapsedSeconds() > opts.time_budget_s) {
            abort.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();

    std::vector<Embedding> next;
    size_t total = 0;
    for (auto& p : partial) total += p.size();
    next.reserve(total);
    for (auto& p : partial) {
      for (auto& e : p) next.push_back(std::move(e));
      p.clear();
    }
    result.embeddings_materialized += static_cast<int64_t>(next.size());
    mem.Consume(LevelBytes(next));  // both levels live at the barrier
    mem.Release(LevelBytes(current));
    current = std::move(next);
    ++result.levels;

    if (opts.mem_cap_bytes > 0 && mem.peak() > opts.mem_cap_bytes) {
      result.mem_exceeded = true;
      break;
    }
    if (opts.time_budget_s > 0 && wall.ElapsedSeconds() > opts.time_budget_s) {
      result.timed_out = true;
      break;
    }
    if (abort.load()) {
      result.mem_exceeded = opts.mem_cap_bytes > 0 &&
                            mem.peak() > opts.mem_cap_bytes;
      result.timed_out = !result.mem_exceeded;
      break;
    }
  }

  result.peak_mem_bytes = mem.peak();
  result.elapsed_s = wall.ElapsedSeconds();
  return result;
}

}  // namespace gthinker::baselines
