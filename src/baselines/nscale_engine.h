#ifndef GTHINKER_BASELINES_NSCALE_ENGINE_H_
#define GTHINKER_BASELINES_NSCALE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/subgraph.h"
#include "core/vertex.h"
#include "graph/graph.h"

namespace gthinker::baselines {

/// The NScale baseline (paper §II, Table I): (i) construct the k-hop
/// neighborhood subgraph of every vertex through k BFS rounds, implemented
/// MapReduce-style with the per-root state *materialized to disk between
/// rounds* ("to avoid keeping the numerous subgraphs in memory"); then,
/// only after every subgraph is finished (a hard phase barrier), (ii) mine
/// the subgraphs in parallel. The barrier is exactly the poor-CPU-
/// utilization / straggler problem the paper calls out: no mining can
/// overlap construction.
class NScaleEngine {
 public:
  struct Options {
    int num_threads = 2;
    double time_budget_s = 0.0;  // 0 = unlimited
    std::string work_dir;        // empty = fresh temp dir
  };

  struct Result {
    double elapsed_s = 0.0;
    double construct_s = 0.0;  // phase (i) wall time (all of it paid first)
    double mine_s = 0.0;       // phase (ii)
    bool timed_out = false;
    int64_t bytes_written = 0;
    int64_t bytes_read = 0;
    int64_t subgraphs = 0;
  };

  /// Decides which vertices get an ego subgraph (return false to skip).
  using RootFilter = std::function<bool(VertexId, const AdjList&)>;

  /// Mines one fully-constructed ego subgraph; `root` is its center. Runs
  /// from worker threads in phase (ii) — must be thread-safe.
  using MineFn =
      std::function<void(VertexId root, const Subgraph<Vertex<AdjList>>&)>;

  Result Run(const Graph& graph, int k_hops, const RootFilter& filter,
             const MineFn& mine, const Options& opts);
};

}  // namespace gthinker::baselines

#endif  // GTHINKER_BASELINES_NSCALE_ENGINE_H_
