#include "baselines/pregel_apps.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "apps/kernels.h"

namespace gthinker::baselines {

PregelTcResult PregelTriangleCount(const Graph& graph,
                                   const PregelOptions& opts) {
  using Engine = PregelEngine<uint64_t, AdjList>;
  Engine engine;
  std::atomic<uint64_t> triangles{0};

  auto compute = [&graph, &triangles](VertexId v, const AdjList& adj,
                                      uint64_t& /*value*/,
                                      const std::vector<AdjList>& messages,
                                      Engine::Context& ctx) {
    if (ctx.superstep() == 0) {
      const auto first_gt = std::upper_bound(adj.begin(), adj.end(), v);
      for (auto it = first_gt; it != adj.end(); ++it) {
        // Candidates larger than the receiver *it.
        AdjList candidates(it + 1, adj.end());
        if (!candidates.empty()) ctx.Send(*it, candidates);
      }
      ctx.VoteToHalt();
      return;
    }
    uint64_t local = 0;
    for (const AdjList& candidates : messages) {
      for (VertexId w : candidates) {
        if (std::binary_search(adj.begin(), adj.end(), w)) ++local;
      }
    }
    if (local > 0) triangles.fetch_add(local, std::memory_order_relaxed);
    ctx.VoteToHalt();
  };

  PregelTcResult out;
  out.stats = engine.Run(graph, compute, opts);
  out.triangles = triangles.load();
  return out;
}

PregelMcfResult PregelMaxClique(const Graph& graph,
                                const PregelOptions& opts) {
  using Engine = PregelEngine<uint64_t, AdjList>;
  Engine engine;
  std::mutex best_mutex;
  std::vector<VertexId> best;
  std::atomic<size_t> best_size{0};

  auto record = [&](const std::vector<VertexId>& clique) {
    size_t cur = best_size.load(std::memory_order_relaxed);
    if (clique.size() <= cur) return;
    std::lock_guard<std::mutex> lock(best_mutex);
    if (clique.size() > best.size()) {
      best = clique;
      best_size.store(best.size(), std::memory_order_relaxed);
    }
  };

  auto compute = [&graph, &record, &best_size](
                     VertexId v, const AdjList& adj, uint64_t& /*value*/,
                     const std::vector<AdjList>& messages,
                     Engine::Context& ctx) {
    const auto first_gt = std::upper_bound(adj.begin(), adj.end(), v);
    const size_t num_gt = static_cast<size_t>(adj.end() - first_gt);
    if (ctx.superstep() == 0) {
      record({v});
      // Branch-and-bound cut: {v} plus all larger neighbors is the ceiling.
      if (1 + num_gt > best_size.load(std::memory_order_relaxed)) {
        for (auto it = first_gt; it != adj.end(); ++it) ctx.Send(*it, {v});
      }
      ctx.VoteToHalt();
      return;
    }
    for (const AdjList& s : messages) {
      // v may join the clique S only if adjacent to every member.
      bool ok = true;
      for (VertexId u : s) {
        if (!std::binary_search(adj.begin(), adj.end(), u)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      AdjList grown = s;
      grown.push_back(v);  // v > all of S (sets travel up the ID order)
      record(grown);
      if (grown.size() + num_gt > best_size.load(std::memory_order_relaxed)) {
        for (auto it = first_gt; it != adj.end(); ++it) ctx.Send(*it, grown);
      }
    }
    ctx.VoteToHalt();
  };

  PregelMcfResult out;
  out.stats = engine.Run(graph, compute, opts);
  std::sort(best.begin(), best.end());
  out.best_clique = best;
  return out;
}

}  // namespace gthinker::baselines
