#ifndef GTHINKER_OBS_JSON_H_
#define GTHINKER_OBS_JSON_H_

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gthinker::obs {

/// Minimal streaming JSON writer for run reports and Chrome trace files.
/// No external dependency: the container bakes in nothing JSON-shaped, and
/// the subset we emit (objects, arrays, strings, numbers, bools) is small.
/// Comma placement is tracked per nesting level, so callers just alternate
/// Key()/value calls inside objects and value calls inside arrays.
class JsonWriter {
 public:
  JsonWriter() { first_.push_back(true); }

  void BeginObject() { OpenContainer('{'); }
  void EndObject() { CloseContainer('}'); }
  void BeginArray() { OpenContainer('['); }
  void EndArray() { CloseContainer(']'); }

  void Key(const std::string& key) {
    Separate();
    AppendQuoted(key);
    out_.push_back(':');
    key_pending_ = true;
  }

  void String(const std::string& value) {
    Separate();
    AppendQuoted(value);
  }

  void Int(int64_t value) {
    Separate();
    out_ += std::to_string(value);
  }

  void UInt(uint64_t value) {
    Separate();
    out_ += std::to_string(value);
  }

  void Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
  }

  void Null() {
    Separate();
    out_ += "null";
  }

  /// Doubles print with enough digits to round-trip; non-finite values have
  /// no JSON spelling and degrade to null.
  void Double(double value) {
    Separate();
    if (!std::isfinite(value)) {
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
    // "%.17g" may print an integral double without '.' or exponent; that is
    // still valid JSON, so leave it.
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void OpenContainer(char open) {
    Separate();
    out_.push_back(open);
    first_.push_back(true);
  }

  void CloseContainer(char close) {
    first_.pop_back();
    out_.push_back(close);
  }

  /// Emits the comma before any element that is not the first of its
  /// container. A value directly after Key() is the key's payload, never
  /// comma-separated from it.
  void Separate() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (!first_.back()) {
      out_.push_back(',');
    }
    first_.back() = false;
  }

  void AppendQuoted(const std::string& s) {
    out_.push_back('"');
    for (unsigned char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_.push_back(static_cast<char>(c));
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  std::vector<bool> first_;  // per nesting level: no element emitted yet
  bool key_pending_ = false;
};

/// Parsed JSON value (tree form). Objects keep insertion order, which the
/// report round-trip test relies on for deterministic comparison.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }
};

/// Recursive-descent parser for the full JSON grammar (RFC 8259 minus the
/// finer points of \u surrogate pairs, which our writer never emits).
/// Exists so tests can verify emitted artifacts are well-formed without a
/// third-party dependency, and so reports can be read back in-process.
class JsonParser {
 public:
  static Status Parse(const std::string& text, JsonValue* out) {
    JsonParser parser(text);
    GT_RETURN_IF_ERROR(parser.ParseValue(out, 0));
    parser.SkipWhitespace();
    if (parser.pos_ != text.size()) {
      return Status::Corruption("trailing characters after JSON value");
    }
    return Status::Ok();
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  static constexpr int kMaxDepth = 64;

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Status::Corruption("JSON nested too deeply");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Status::Corruption("unexpected end");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Expect("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Expect("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Expect("null");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      GT_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::Corruption("expected ':' in object");
      }
      ++pos_;
      JsonValue value;
      GT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Status::Corruption("unclosed object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Status::Corruption("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      GT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Status::Corruption("unclosed array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Status::Corruption("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::Corruption("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::Corruption("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Status::Corruption("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::Corruption("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::Corruption("bad hex digit in \\u escape");
            }
          }
          // Our writer only escapes ASCII control characters; decode the
          // BMP code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::Corruption("unknown escape sequence");
      }
    }
    return Status::Corruption("unclosed string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const size_t int_begin = pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == int_begin) return Status::Corruption("expected a number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const size_t frac_begin = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac_begin) return Status::Corruption("bare decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp_begin = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_begin) return Status::Corruption("empty exponent");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(begin, pos_ - begin).c_str(),
                              nullptr);
    return Status::Ok();
  }

  Status Expect(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Status::Corruption(std::string("expected literal ") + literal);
      }
      ++pos_;
    }
    return Status::Ok();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline Status JsonParse(const std::string& text, JsonValue* out) {
  return JsonParser::Parse(text, out);
}

/// True iff `text` is one complete well-formed JSON value.
inline bool JsonValid(const std::string& text) {
  JsonValue value;
  return JsonParse(text, &value).ok();
}

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_JSON_H_
