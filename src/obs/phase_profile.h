#ifndef GTHINKER_OBS_PHASE_PROFILE_H_
#define GTHINKER_OBS_PHASE_PROFILE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"

namespace gthinker::obs {

/// Where a comper's wall time went, the decomposition the paper's evaluation
/// (and follow-ups like the quasi-clique codesign work) diagnose with:
///   compute    — inside UDF Compute() iterations
///   pull_wait  — idle with tasks parked waiting on remote vertex pulls
///   queue_wait — idle with nothing runnable (load imbalance / drain / park)
///   spill      — writing or reloading spill files on the comper thread
///   steal      — packing donation batches (worker rows only; comm thread)
///   other      — loop overhead not attributed above (queue ops, bookkeeping)
/// Parts are measured directly with disjoint timers on the comper loop, so
/// per comper they sum exactly to total_us (= the loop's wall time).
struct PhaseBreakdown {
  int worker = -1;
  int comper = -1;  // -1 = whole-worker row
  int64_t compute_us = 0;
  int64_t pull_wait_us = 0;
  int64_t queue_wait_us = 0;
  int64_t spill_us = 0;
  int64_t steal_us = 0;
  int64_t other_us = 0;
  int64_t total_us = 0;

  int64_t NamedSum() const {
    return compute_us + pull_wait_us + queue_wait_us + spill_us + steal_us;
  }

  /// Fraction of total_us attributed to a named phase (not `other`);
  /// -1 when the row is empty.
  double Coverage() const {
    if (total_us <= 0) return -1.0;
    return static_cast<double>(NamedSum()) / static_cast<double>(total_us);
  }
};

/// One row of the straggler table: a task that monopolized compute, with its
/// split lineage so oversized tasks that were (or weren't) decomposed are
/// visible.
struct Straggler {
  uint64_t task_id = 0;
  uint64_t parent_task_id = 0;  // 0 = not a split child
  int worker = -1;
  int comper = -1;
  int64_t compute_us = 0;
  int64_t iterations = 0;
};

struct PhaseProfile {
  std::vector<PhaseBreakdown> per_comper;  // sorted by (worker, comper)
  std::vector<PhaseBreakdown> per_worker;  // sorted by worker
  std::vector<Straggler> stragglers;       // top-k by compute, descending

  bool empty() const { return per_comper.empty() && per_worker.empty(); }

  /// Writes the profile as one JSON object value (the report's "phases"
  /// section).
  void WriteJson(JsonWriter* w) const {
    auto write_row = [w](const PhaseBreakdown& row) {
      w->BeginObject();
      w->Key("worker");
      w->Int(row.worker);
      if (row.comper >= 0) {
        w->Key("comper");
        w->Int(row.comper);
      }
      w->Key("compute_us");
      w->Int(row.compute_us);
      w->Key("pull_wait_us");
      w->Int(row.pull_wait_us);
      w->Key("queue_wait_us");
      w->Int(row.queue_wait_us);
      w->Key("spill_us");
      w->Int(row.spill_us);
      w->Key("steal_us");
      w->Int(row.steal_us);
      w->Key("other_us");
      w->Int(row.other_us);
      w->Key("total_us");
      w->Int(row.total_us);
      w->Key("coverage");
      w->Double(row.Coverage());
      w->EndObject();
    };
    w->BeginObject();
    w->Key("per_worker");
    w->BeginArray();
    for (const PhaseBreakdown& row : per_worker) write_row(row);
    w->EndArray();
    w->Key("per_comper");
    w->BeginArray();
    for (const PhaseBreakdown& row : per_comper) write_row(row);
    w->EndArray();
    w->Key("stragglers");
    w->BeginArray();
    for (const Straggler& s : stragglers) {
      w->BeginObject();
      w->Key("task");
      w->UInt(s.task_id);
      if (s.parent_task_id != 0) {
        w->Key("parent");
        w->UInt(s.parent_task_id);
      }
      w->Key("worker");
      w->Int(s.worker);
      w->Key("comper");
      w->Int(s.comper);
      w->Key("compute_us");
      w->Int(s.compute_us);
      w->Key("iterations");
      w->Int(s.iterations);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }

  /// Human-readable table for JobStats::Summary().
  std::string HumanTable() const {
    std::string out;
    char line[220];
    if (!per_worker.empty()) {
      out += "  phase profile (ms):\n";
      std::snprintf(line, sizeof(line),
                    "    %-10s %9s %9s %10s %7s %7s %7s %9s %6s\n", "scope",
                    "compute", "pullwait", "queuewait", "spill", "steal",
                    "other", "total", "cover");
      out += line;
      auto emit = [&](const PhaseBreakdown& row, const std::string& scope) {
        std::snprintf(line, sizeof(line),
                      "    %-10s %9.1f %9.1f %10.1f %7.1f %7.1f %7.1f %9.1f "
                      "%5.1f%%\n",
                      scope.c_str(), row.compute_us / 1e3,
                      row.pull_wait_us / 1e3, row.queue_wait_us / 1e3,
                      row.spill_us / 1e3, row.steal_us / 1e3,
                      row.other_us / 1e3, row.total_us / 1e3,
                      100.0 * std::max(0.0, row.Coverage()));
        out += line;
      };
      for (const PhaseBreakdown& row : per_worker) {
        emit(row, "w" + std::to_string(row.worker));
      }
      for (const PhaseBreakdown& row : per_comper) {
        emit(row, "w" + std::to_string(row.worker) + ".c" +
                      std::to_string(row.comper));
      }
    }
    if (!stragglers.empty()) {
      out += "  top tasks by compute:\n";
      std::snprintf(line, sizeof(line), "    %-14s %-14s %6s %6s %6s %12s\n",
                    "task", "parent", "worker", "comper", "iters",
                    "compute_ms");
      out += line;
      for (const Straggler& s : stragglers) {
        std::snprintf(line, sizeof(line),
                      "    %-14llu %-14llu %6d %6d %6lld %12.1f\n",
                      static_cast<unsigned long long>(s.task_id),
                      static_cast<unsigned long long>(s.parent_task_id),
                      s.worker, s.comper, static_cast<long long>(s.iterations),
                      s.compute_us / 1e3);
        out += line;
      }
    }
    return out;
  }
};

namespace internal_phase {

/// Extracts the comper index from a registry key's label suffix
/// ("phase.compute_us{comper=3}" -> 3); -1 when there is none.
inline int ComperFromKey(const std::string& key) {
  const size_t pos = key.find("{comper=");
  if (pos == std::string::npos) return -1;
  return std::atoi(key.c_str() + pos + 8);
}

/// Extracts the worker index from a snapshot scope ("worker3" -> 3);
/// -1 for non-worker scopes ("hub").
inline int WorkerFromScope(const std::string& scope) {
  if (scope.rfind("worker", 0) != 0 || scope.size() <= 6) return -1;
  return std::atoi(scope.c_str() + 6);
}

}  // namespace internal_phase

/// Aggregates the per-comper phase counters (recorded by the comper loops,
/// see Worker::ComperEngine) and worker-level steal timing into the
/// breakdown, and mines span events for the straggler table. Rows appear
/// only for scopes that actually recorded phase counters, so the profile is
/// empty when `enable_phase_profile` was off.
inline PhaseProfile BuildPhaseProfile(
    const std::vector<MetricsSnapshot>& metrics,
    const std::vector<SpanEvent>& spans, size_t top_k = 8) {
  PhaseProfile profile;
  for (const MetricsSnapshot& snap : metrics) {
    const int worker = internal_phase::WorkerFromScope(snap.scope);
    if (worker < 0) continue;
    std::map<int, PhaseBreakdown> compers;
    int64_t worker_steal_us = 0;
    for (const auto& [key, value] : snap.counters) {
      if (key.rfind("phase.", 0) != 0) continue;
      if (key.rfind("phase.steal_us", 0) == 0) {
        worker_steal_us += value;
        continue;
      }
      const int comper = internal_phase::ComperFromKey(key);
      PhaseBreakdown& row = compers[comper];
      row.worker = worker;
      row.comper = comper;
      if (key.rfind("phase.compute_us", 0) == 0) {
        row.compute_us = value;
      } else if (key.rfind("phase.pull_wait_us", 0) == 0) {
        row.pull_wait_us = value;
      } else if (key.rfind("phase.queue_wait_us", 0) == 0) {
        row.queue_wait_us = value;
      } else if (key.rfind("phase.spill_us", 0) == 0) {
        row.spill_us = value;
      } else if (key.rfind("phase.loop_us", 0) == 0) {
        row.total_us = value;
      }
    }
    if (compers.empty() && worker_steal_us == 0) continue;
    PhaseBreakdown worker_row;
    worker_row.worker = worker;
    for (auto& [comper, row] : compers) {
      // Disjoint timers truncate downward independently, so the named sum
      // can undershoot (never legitimately overshoot) the loop total; the
      // remainder is unattributed loop overhead.
      row.other_us = std::max<int64_t>(0, row.total_us - row.NamedSum());
      worker_row.compute_us += row.compute_us;
      worker_row.pull_wait_us += row.pull_wait_us;
      worker_row.queue_wait_us += row.queue_wait_us;
      worker_row.spill_us += row.spill_us;
      worker_row.other_us += row.other_us;
      worker_row.total_us += row.total_us;
      profile.per_comper.push_back(row);
    }
    // The comm thread's donation packing runs beside the comper loops; fold
    // it into the worker row as its own named part of the worker total.
    worker_row.steal_us = worker_steal_us;
    worker_row.total_us += worker_steal_us;
    profile.per_worker.push_back(worker_row);
  }
  std::sort(profile.per_worker.begin(), profile.per_worker.end(),
            [](const PhaseBreakdown& a, const PhaseBreakdown& b) {
              return a.worker < b.worker;
            });
  std::sort(profile.per_comper.begin(), profile.per_comper.end(),
            [](const PhaseBreakdown& a, const PhaseBreakdown& b) {
              return a.worker != b.worker ? a.worker < b.worker
                                          : a.comper < b.comper;
            });

  // Straggler table: per-task compute from execute spans, split lineage from
  // spawn/split parent links. Requires span tracing; empty otherwise.
  struct TaskAgg {
    int64_t compute_us = 0;
    int64_t iterations = 0;
    int worker = -1;
    int comper = -1;
    uint64_t parent = 0;
  };
  std::unordered_map<uint64_t, TaskAgg> by_task;
  for (const SpanEvent& e : spans) {
    if (e.task_id == 0) continue;
    if (e.phase == SpanPhase::kExecute) {
      TaskAgg& agg = by_task[e.task_id];
      agg.compute_us += e.dur_us;
      ++agg.iterations;
      agg.worker = e.worker;
      agg.comper = e.comper;
    } else if (e.parent_task_id != 0 && e.phase == SpanPhase::kSpawn) {
      by_task[e.task_id].parent = e.parent_task_id;
    }
  }
  std::vector<Straggler> all;
  all.reserve(by_task.size());
  for (const auto& [task_id, agg] : by_task) {
    if (agg.compute_us <= 0) continue;
    Straggler s;
    s.task_id = task_id;
    s.parent_task_id = agg.parent;
    s.worker = agg.worker;
    s.comper = agg.comper;
    s.compute_us = agg.compute_us;
    s.iterations = agg.iterations;
    all.push_back(s);
  }
  std::sort(all.begin(), all.end(), [](const Straggler& a, const Straggler& b) {
    return a.compute_us != b.compute_us ? a.compute_us > b.compute_us
                                        : a.task_id < b.task_id;
  });
  if (all.size() > top_k) all.resize(top_k);
  profile.stragglers = std::move(all);
  return profile;
}

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_PHASE_PROFILE_H_
