#ifndef GTHINKER_OBS_STATUS_SERVER_H_
#define GTHINKER_OBS_STATUS_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/http_server.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "util/status.h"

namespace gthinker::obs {

/// Live introspection endpoint for a running job, composed over the generic
/// net::HttpServer:
///   GET /metrics      Prometheus text exposition of all live registries
///   GET /status.json  job progress snapshot (built by the cluster)
///   GET /healthz      "ok" liveness probe
///   GET /             tiny plain-text index of the above
///
/// The cluster owns the server for the duration of Cluster::Run and supplies
/// the two snapshot callbacks; both must stay callable until Stop returns.
/// Port semantics follow the `status_port` knob: > 0 binds that port, -1
/// asks the kernel for an ephemeral one (tests; discover it via port() or
/// Current()). 0 means "off" and is handled by the caller, not here.
class StatusServer {
 public:
  using MetricsFn = std::function<std::vector<MetricsSnapshot>()>;
  using StatusJsonFn = std::function<std::string()>;

  StatusServer(MetricsFn metrics_fn, StatusJsonFn status_fn)
      : metrics_fn_(std::move(metrics_fn)), status_fn_(std::move(status_fn)) {
    server_.Route("/metrics", [this] {
      net::HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = RenderPrometheus(metrics_fn_());
      return resp;
    });
    server_.Route("/status.json", [this] {
      net::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = status_fn_();
      return resp;
    });
    server_.Route("/healthz", [] {
      net::HttpResponse resp;
      resp.body = "ok\n";
      return resp;
    });
    server_.Route("/", [] {
      net::HttpResponse resp;
      resp.body = "gthinker status server\n/metrics\n/status.json\n/healthz\n";
      return resp;
    });
  }

  ~StatusServer() { Stop(); }

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  Status Start(int status_port) {
    const int port = status_port < 0 ? 0 : status_port;
    GT_RETURN_IF_ERROR(server_.Start(port));
    CurrentSlot().store(this, std::memory_order_release);
    return Status::Ok();
  }

  void Stop() {
    StatusServer* self = this;
    CurrentSlot().compare_exchange_strong(self, nullptr,
                                          std::memory_order_acq_rel);
    server_.Stop();
  }

  /// The bound port, valid after a successful Start (resolves ephemeral -1).
  int port() const { return server_.port(); }

  /// The most recently started live server in this process (nullptr when
  /// none) — lets tests and embedding code discover an ephemeral port
  /// without plumbing it through job results. With concurrent jobs the last
  /// Start wins; each job still owns its own server instance.
  static StatusServer* Current() {
    return CurrentSlot().load(std::memory_order_acquire);
  }

 private:
  static std::atomic<StatusServer*>& CurrentSlot() {
    static std::atomic<StatusServer*> current{nullptr};
    return current;
  }

  MetricsFn metrics_fn_;
  StatusJsonFn status_fn_;
  net::HttpServer server_;
};

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_STATUS_SERVER_H_
