#ifndef GTHINKER_OBS_SPAN_TRACE_H_
#define GTHINKER_OBS_SPAN_TRACE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/sharded_ring.h"
#include "util/status.h"

namespace gthinker::obs {

/// Per-task lifecycle phases (paper Fig. 7 state machine): a healthy task
/// reads spawn -> (pending -> ready)* -> execute* -> finish; loaded marks a
/// task re-entering memory from a spill file (it gets a fresh span id — the
/// disk round-trip intentionally breaks the span, mirroring how the task
/// left the worker's live state).
enum class SpanPhase : uint8_t {
  kSpawn = 0,
  kPending = 1,
  kReady = 2,
  kExecute = 3,  // carries dur_us: one compute() iteration
  kFinish = 4,
  kLoaded = 5,
  kSplit = 6,  // task decomposed; children link back via parent_task_id
};

inline const char* SpanPhaseName(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kSpawn:
      return "spawn";
    case SpanPhase::kPending:
      return "pending";
    case SpanPhase::kReady:
      return "ready";
    case SpanPhase::kExecute:
      return "execute";
    case SpanPhase::kFinish:
      return "finish";
    case SpanPhase::kLoaded:
      return "loaded";
    case SpanPhase::kSplit:
      return "split";
  }
  return "unknown";
}

/// One span-trace event. Timestamps come from the hub clock, so events from
/// different workers share an epoch and interleave correctly in a viewer.
struct SpanEvent {
  int64_t t_us = 0;
  int64_t dur_us = 0;  // only kExecute carries a duration
  uint64_t task_id = 0;
  /// Span id of the task this one was split from (0 = not a split child):
  /// the kSpawn of a split child and the kSplit of the parent both carry it,
  /// so a trace viewer can stitch the decomposition tree.
  uint64_t parent_task_id = 0;
  int16_t worker = 0;
  int16_t comper = 0;  // -1 for worker-level events
  SpanPhase phase = SpanPhase::kSpawn;
};

/// Per-worker bounded span store; recording contends only within the
/// recording thread's shard.
using SpanRing = ShardedRing<SpanEvent>;

/// Serializes span events as Chrome trace-event JSON ("JSON object format"),
/// loadable in Perfetto / chrome://tracing: workers map to processes,
/// compers to threads; execute phases are complete ("X") slices with real
/// durations, the other phases instant ("i") marks. Timestamps are already
/// microseconds, the unit the format expects.
inline std::string ChromeTraceJson(const std::vector<SpanEvent>& events,
                                   int num_workers = 0) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (int worker = 0; worker < num_workers; ++worker) {
    w.BeginObject();
    w.Key("name");
    w.String("process_name");
    w.Key("ph");
    w.String("M");
    w.Key("pid");
    w.Int(worker);
    w.Key("tid");
    w.Int(0);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String("worker" + std::to_string(worker));
    w.EndObject();
    w.EndObject();
  }
  for (const SpanEvent& e : events) {
    w.BeginObject();
    w.Key("name");
    w.String(SpanPhaseName(e.phase));
    w.Key("cat");
    w.String("task");
    w.Key("ph");
    w.String(e.phase == SpanPhase::kExecute ? "X" : "i");
    if (e.phase != SpanPhase::kExecute) {
      w.Key("s");  // instant-event scope: thread
      w.String("t");
    }
    w.Key("ts");
    w.Int(e.t_us);
    if (e.phase == SpanPhase::kExecute) {
      w.Key("dur");
      w.Int(e.dur_us);
    }
    w.Key("pid");
    w.Int(e.worker);
    w.Key("tid");
    // Comper -1 (worker-level events) displays as its own lane.
    w.Int(e.comper >= 0 ? e.comper : 999);
    w.Key("args");
    w.BeginObject();
    w.Key("task");
    w.UInt(e.task_id);
    if (e.parent_task_id != 0) {
      w.Key("parent");
      w.UInt(e.parent_task_id);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

inline Status WriteChromeTrace(const std::string& path,
                               const std::vector<SpanEvent>& events,
                               int num_workers = 0) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open trace file " + path);
  }
  out << ChromeTraceJson(events, num_workers);
  out.close();
  if (!out.good()) return Status::IoError("short write to " + path);
  return Status::Ok();
}

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_SPAN_TRACE_H_
