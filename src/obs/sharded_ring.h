#ifndef GTHINKER_OBS_SHARDED_RING_H_
#define GTHINKER_OBS_SHARDED_RING_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/spinlock.h"

namespace gthinker::obs {

/// Bounded multi-producer event ring, sharded by recording thread so hot
/// paths never contend on one lock: each recorder hashes to a shard and
/// takes only that shard's spinlock for a few stores. A single shared
/// atomic sequence stamp gives merged snapshots a global arrival order
/// (one relaxed fetch_add per record — cheaper than any lock, and the
/// price of making Snapshot() deterministic).
///
/// Retention is per shard: every shard keeps its newest `capacity` events,
/// and Snapshot() returns the globally-newest `capacity` of the merged set.
/// For single-threaded recording this is exactly the classic "newest
/// capacity events win" ring; under concurrency the merged view can differ
/// from a true global ring only in which *old* events were overwritten.
template <typename T>
class ShardedRing {
 public:
  explicit ShardedRing(size_t capacity, int num_shards = 16)
      : capacity_(capacity == 0 ? 1 : capacity),
        shards_(static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {}

  ShardedRing(const ShardedRing&) = delete;
  ShardedRing& operator=(const ShardedRing&) = delete;

  void Record(T item) {
    const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = shards_[ShardIndex()];
    std::lock_guard<SpinLock> lock(shard.lock);
    ++shard.total;
    if (shard.slots.size() < capacity_) {
      shard.slots.push_back(Slot{seq, std::move(item)});
    } else {
      shard.slots[shard.next_overwrite] = Slot{seq, std::move(item)};
      shard.next_overwrite = (shard.next_overwrite + 1) % capacity_;
    }
  }

  /// Merged view in arrival order (oldest retained first), capped at the
  /// newest `capacity` events overall.
  std::vector<T> Snapshot() const {
    std::vector<Slot> merged;
    for (const Shard& shard : shards_) {
      std::lock_guard<SpinLock> lock(shard.lock);
      merged.insert(merged.end(), shard.slots.begin(), shard.slots.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Slot& a, const Slot& b) { return a.seq < b.seq; });
    if (merged.size() > capacity_) {
      merged.erase(merged.begin(),
                   merged.end() - static_cast<ptrdiff_t>(capacity_));
    }
    std::vector<T> out;
    out.reserve(merged.size());
    for (Slot& slot : merged) out.push_back(std::move(slot.item));
    return out;
  }

  /// Total events ever recorded (including overwritten ones).
  int64_t total() const {
    int64_t sum = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<SpinLock> lock(shard.lock);
      sum += shard.total;
    }
    return sum;
  }

 private:
  struct Slot {
    uint64_t seq = 0;
    T item;
  };

  struct Shard {
    mutable SpinLock lock;
    std::vector<Slot> slots;
    size_t next_overwrite = 0;
    int64_t total = 0;
  };

  size_t ShardIndex() const {
    return std::hash<std::thread::id>()(std::this_thread::get_id()) %
           shards_.size();
  }

  const size_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> seq_{0};
};

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_SHARDED_RING_H_
