#ifndef GTHINKER_OBS_FLIGHT_RECORDER_H_
#define GTHINKER_OBS_FLIGHT_RECORDER_H_

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/sharded_ring.h"
#include "util/logging.h"

namespace gthinker::obs {

/// Kinds of scheduler/state-machine transitions the flight recorder keeps.
/// Events are batch-granularity on purpose: one record per spawn batch,
/// spill file, steal shipment, split, progress report or drain phase keeps
/// the always-on overhead negligible while still reconstructing the last
/// seconds before a crash.
enum class FlightKind : uint8_t {
  kSpawnBatch = 0,    // a = tasks spawned in the batch
  kSplit = 1,         // a = children produced, b = child split depth
  kSpillWrite = 2,    // a = tasks written to one spill file
  kSpillLoad = 3,     // a = tasks loaded back from one spill file
  kStealDonate = 4,   // a = tasks donated, b = destination worker
  kStealReceive = 5,  // a = tasks received, b = source worker
  kLedger = 6,        // a = ExpectedLive(), b = live tasks (progress cadence)
  kDrain = 7,         // a = drain phase (see worker DrainAndReport)
  kCheckpoint = 8,    // a = checkpoint epoch
  kTimeout = 9,       // master hit the time budget; a = elapsed seconds
  kTerminate = 10,    // worker saw kTerminate
};

inline const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kSpawnBatch:
      return "spawn_batch";
    case FlightKind::kSplit:
      return "split";
    case FlightKind::kSpillWrite:
      return "spill_write";
    case FlightKind::kSpillLoad:
      return "spill_load";
    case FlightKind::kStealDonate:
      return "steal_donate";
    case FlightKind::kStealReceive:
      return "steal_receive";
    case FlightKind::kLedger:
      return "ledger";
    case FlightKind::kDrain:
      return "drain";
    case FlightKind::kCheckpoint:
      return "checkpoint";
    case FlightKind::kTimeout:
      return "timeout";
    case FlightKind::kTerminate:
      return "terminate";
  }
  return "unknown";
}

/// One recorded transition. Timestamps use the hub clock when the caller has
/// one (workers do), so flight events line up with span traces; otherwise a
/// process-steady fallback clock.
struct FlightEvent {
  int64_t t_us = 0;
  int32_t worker = -1;
  int32_t comper = -1;
  FlightKind kind = FlightKind::kSpawnBatch;
  int64_t a = 0;
  int64_t b = 0;
};

/// Fallback event clock: microseconds since the first call in this process.
inline int64_t FlightNowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// Always-on bounded ring of recent scheduler transitions, one per job,
/// dumped to JSON when something goes fatally wrong (ledger violation,
/// timeout exit, SIGTERM/SIGINT). Construction registers the recorder in a
/// process-global registry so the crash paths — which cannot reach the job's
/// stack — can find every live job's recorder; destruction unregisters.
///
/// Recording cost is one relaxed fetch_add plus a sharded spinlock push
/// (see ShardedRing); events are batch-granularity, so a healthy run records
/// a few hundred events per second per worker at most.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity)
      : enabled_(capacity > 0), ring_(capacity == 0 ? 1 : capacity) {
    if (enabled_) Register(this);
  }

  ~FlightRecorder() {
    if (enabled_) Unregister(this);
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_; }

  void Record(FlightKind kind, int worker, int comper, int64_t a = 0,
              int64_t b = 0, int64_t t_us = -1) {
    if (!enabled_) return;
    FlightEvent e;
    e.t_us = t_us >= 0 ? t_us : FlightNowUs();
    e.worker = worker;
    e.comper = comper;
    e.kind = kind;
    e.a = a;
    e.b = b;
    ring_.Record(e);
  }

  /// Total events ever recorded (including overwritten ones).
  int64_t total() const { return ring_.total(); }

  /// Retained events, oldest first.
  std::vector<FlightEvent> Snapshot() const { return ring_.Snapshot(); }

  /// Writes this recorder's state as one JSON object value.
  void WriteJson(JsonWriter* w) const {
    const std::vector<FlightEvent> events = ring_.Snapshot();
    w->BeginObject();
    w->Key("recorded_total");
    w->Int(ring_.total());
    w->Key("retained");
    w->Int(static_cast<int64_t>(events.size()));
    w->Key("events");
    w->BeginArray();
    for (const FlightEvent& e : events) {
      w->BeginObject();
      w->Key("t_us");
      w->Int(e.t_us);
      w->Key("kind");
      w->String(FlightKindName(e.kind));
      w->Key("worker");
      w->Int(e.worker);
      if (e.comper >= 0) {
        w->Key("comper");
        w->Int(e.comper);
      }
      w->Key("a");
      w->Int(e.a);
      w->Key("b");
      w->Int(e.b);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }

  std::string DumpJson() const {
    JsonWriter w;
    WriteJson(&w);
    return w.Take();
  }

  /// Overrides the dump directory (normally from JobConfig). Empty means
  /// "use the GT_FLIGHT_DUMP_DIR environment variable, else stderr".
  static void SetDumpDir(const std::string& dir) {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    DumpDir() = dir;
  }

  /// All live recorders as one JSON document.
  static std::string DumpAllJson(const char* reason) {
    JsonWriter w;
    w.BeginObject();
    w.Key("reason");
    w.String(reason == nullptr ? "" : reason);
    w.Key("pid");
    w.Int(static_cast<int64_t>(::getpid()));
    w.Key("recorders");
    w.BeginArray();
    {
      std::lock_guard<std::mutex> lock(RegistryMutex());
      for (const FlightRecorder* rec : Registry()) rec->WriteJson(&w);
    }
    w.EndArray();
    w.EndObject();
    return w.Take();
  }

  /// Dumps every live recorder: to `<dump dir>/gt_flight_<pid>_<n>.json`
  /// when a directory is configured (knob or GT_FLIGHT_DUMP_DIR), else to
  /// stderr. Returns true when a file was written. Deliberately avoids the
  /// logging layer — this runs inside the fatal path.
  static bool WriteCrashDump(const char* reason) {
    const std::string body = DumpAllJson(reason);
    std::string dir;
    {
      std::lock_guard<std::mutex> lock(RegistryMutex());
      dir = DumpDir();
    }
    if (dir.empty()) {
      const char* env = std::getenv("GT_FLIGHT_DUMP_DIR");
      if (env != nullptr) dir = env;
    }
    if (dir.empty()) {
      std::fprintf(stderr, "[flight-recorder] %s\n", body.c_str());
      std::fflush(stderr);
      return false;
    }
    static std::atomic<int> dump_seq{0};
    const std::string path =
        dir + "/gt_flight_" + std::to_string(::getpid()) + "_" +
        std::to_string(dump_seq.fetch_add(1, std::memory_order_relaxed)) +
        ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "[flight-recorder] cannot open %s; dump follows\n%s\n",
                   path.c_str(), body.c_str());
      std::fflush(stderr);
      return false;
    }
    out << body;
    out.close();
    std::fprintf(stderr, "[flight-recorder] wrote crash dump %s (reason: %s)\n",
                 path.c_str(), reason == nullptr ? "" : reason);
    std::fflush(stderr);
    return true;
  }

  /// Installs the fatal-log hook (GT_CHECK / LOG_FATAL) and SIGTERM/SIGINT
  /// handlers that dump all live recorders before the process dies. The
  /// signal path re-raises with the default disposition after dumping, so
  /// exit codes are unchanged. Idempotent; called from Cluster::Run when the
  /// recorder is enabled. (The handlers allocate and lock — not strictly
  /// async-signal-safe, a documented best-effort trade for a dependency-free
  /// dump on the way out.)
  static void InstallCrashHandlers() {
    static std::once_flag once;
    std::call_once(once, [] {
      SetFatalHook([](const char* message) { WriteCrashDump(message); });
      std::signal(SIGTERM, &FlightRecorder::HandleSignal);
      std::signal(SIGINT, &FlightRecorder::HandleSignal);
    });
  }

  static void Register(FlightRecorder* rec) {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    Registry().push_back(rec);
  }

  static void Unregister(FlightRecorder* rec) {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    std::vector<FlightRecorder*>& regs = Registry();
    for (size_t i = 0; i < regs.size(); ++i) {
      if (regs[i] == rec) {
        regs.erase(regs.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }

 private:
  static void HandleSignal(int sig) {
    WriteCrashDump(sig == SIGTERM ? "SIGTERM" : "SIGINT");
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }

  static std::mutex& RegistryMutex() {
    static std::mutex mutex;
    return mutex;
  }

  static std::vector<FlightRecorder*>& Registry() {
    static std::vector<FlightRecorder*> registry;
    return registry;
  }

  static std::string& DumpDir() {
    static std::string dir;
    return dir;
  }

  const bool enabled_;
  ShardedRing<FlightEvent> ring_;
};

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_FLIGHT_RECORDER_H_
