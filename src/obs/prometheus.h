#ifndef GTHINKER_OBS_PROMETHEUS_H_
#define GTHINKER_OBS_PROMETHEUS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace gthinker::obs {

/// Prometheus text exposition (format version 0.0.4) rendered straight from
/// `MetricsSnapshot`s, dependency-free. Naming conventions:
///   - every metric is prefixed `gthinker_` and dots become underscores
///     (`cache.group.hits` -> `gthinker_cache_group_hits`);
///   - counters get the conventional `_total` suffix;
///   - the snapshot scope ("worker0", "hub") becomes a `scope` label and
///     registry labels ("comper=3,group=1") become ordinary labels;
///   - histograms map to cumulative `_bucket{le="..."}` series using the
///     power-of-2 bucket upper bounds, plus `_sum` and `_count`.

/// Sanitizes a registry metric name into a legal Prometheus metric name
/// ([a-zA-Z0-9_:]) with the library prefix.
inline std::string PrometheusName(const std::string& raw) {
  std::string out = "gthinker_";
  out.reserve(out.size() + raw.size());
  for (char c : raw) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

/// Escapes a label value per the exposition format: backslash, double quote
/// and newline must be backslash-escaped.
inline std::string PrometheusEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Parses a registry label suffix "k=v,k2=v2" into pairs. A token without
/// '=' keeps the whole token as the value under the key "label".
inline std::vector<std::pair<std::string, std::string>> ParseRegistryLabels(
    const std::string& labels) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t start = 0;
  while (start <= labels.size() && !labels.empty()) {
    size_t end = labels.find(',', start);
    if (end == std::string::npos) end = labels.size();
    const std::string token = labels.substr(start, end - start);
    if (!token.empty()) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        out.emplace_back("label", token);
      } else {
        out.emplace_back(token.substr(0, eq), token.substr(eq + 1));
      }
    }
    if (end == labels.size()) break;
    start = end + 1;
  }
  return out;
}

/// Splits a snapshot key "name{labels}" (see MetricsRegistry::Key) back into
/// its parts.
inline void SplitMetricKey(const std::string& key, std::string* name,
                           std::string* labels) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *name = key;
    labels->clear();
    return;
  }
  *name = key.substr(0, brace);
  const size_t close = key.rfind('}');
  *labels = key.substr(brace + 1,
                       close == std::string::npos ? std::string::npos
                                                  : close - brace - 1);
}

/// Renders the `{scope="...",k="v",...}` label block (always non-empty:
/// scope is always present). `extra` appends one final label (used for le).
inline std::string PrometheusLabelBlock(
    const std::string& scope,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key = "", const std::string& extra_value = "") {
  std::string out = "{scope=\"" + PrometheusEscape(scope) + "\"";
  for (const auto& [k, v] : labels) {
    out += "," + PrometheusName(k).substr(9) /* strip gthinker_ prefix */ +
           "=\"" + PrometheusEscape(v) + "\"";
  }
  if (!extra_key.empty()) {
    out += "," + extra_key + "=\"" + PrometheusEscape(extra_value) + "\"";
  }
  out += "}";
  return out;
}

/// Renders a full scrape body from per-scope snapshots. All series of one
/// metric family are grouped under a single `# TYPE` line, families are
/// emitted in sorted order, so output is deterministic given the snapshots.
inline std::string RenderPrometheus(
    const std::vector<MetricsSnapshot>& snapshots) {
  struct Family {
    std::string type;
    std::vector<std::string> lines;
  };
  std::map<std::string, Family> families;
  auto family = [&families](const std::string& name,
                            const char* type) -> Family& {
    Family& f = families[name];
    if (f.type.empty()) f.type = type;
    return f;
  };

  char buf[64];
  std::string name, labels;
  for (const MetricsSnapshot& snap : snapshots) {
    for (const auto& [key, value] : snap.counters) {
      SplitMetricKey(key, &name, &labels);
      const std::string fam = PrometheusName(name) + "_total";
      std::snprintf(buf, sizeof(buf), " %lld",
                    static_cast<long long>(value));
      family(fam, "counter")
          .lines.push_back(
              fam + PrometheusLabelBlock(snap.scope, ParseRegistryLabels(labels)) +
              buf);
    }
    for (const auto& [key, value] : snap.gauges) {
      SplitMetricKey(key, &name, &labels);
      const std::string fam = PrometheusName(name);
      std::snprintf(buf, sizeof(buf), " %lld",
                    static_cast<long long>(value));
      family(fam, "gauge")
          .lines.push_back(
              fam + PrometheusLabelBlock(snap.scope, ParseRegistryLabels(labels)) +
              buf);
    }
    for (const HistogramSnapshot& h : snap.histograms) {
      const std::string fam = PrometheusName(h.name);
      Family& f = family(fam, "histogram");
      const auto parsed = ParseRegistryLabels(h.labels);
      // Cumulative buckets; empty power-of-2 buckets are skipped (legal —
      // bucket series are cumulative so any subset of boundaries is valid),
      // the mandatory +Inf bucket always closes the series.
      int64_t cumulative = 0;
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        cumulative += h.buckets[i];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(
                          HistogramSnapshot::BucketUpperBound(i)));
        f.lines.push_back(fam + "_bucket" +
                          PrometheusLabelBlock(snap.scope, parsed, "le", buf) +
                          " " + std::to_string(cumulative));
      }
      f.lines.push_back(fam + "_bucket" +
                        PrometheusLabelBlock(snap.scope, parsed, "le", "+Inf") +
                        " " + std::to_string(h.count));
      f.lines.push_back(fam + "_sum" + PrometheusLabelBlock(snap.scope, parsed) +
                        " " + std::to_string(h.sum));
      f.lines.push_back(fam + "_count" +
                        PrometheusLabelBlock(snap.scope, parsed) + " " +
                        std::to_string(h.count));
    }
  }

  std::string out;
  for (const auto& [fam, f] : families) {
    out += "# TYPE " + fam + " " + f.type + "\n";
    for (const std::string& line : f.lines) {
      out += line;
      out.push_back('\n');
    }
  }
  return out;
}

/// Structural lint of a rendered scrape body, used by tests and available to
/// callers that want a self-check: every line must be a comment or a
/// `name{labels} value` sample with balanced quotes/braces, every histogram
/// family must close with a `le="+Inf"` bucket, and `_bucket` series must be
/// cumulative (non-decreasing within a family).
inline Status PrometheusLint(const std::string& body) {
  auto is_name_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
  };
  size_t pos = 0;
  int line_no = 0;
  std::string current_hist_family;
  bool saw_inf = true;
  int64_t last_bucket = -1;
  std::string last_bucket_scope;
  while (pos < body.size()) {
    ++line_no;
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": missing trailing newline");
    }
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // New TYPE block: if we were inside a histogram family, it must have
      // been closed by +Inf buckets.
      if (!saw_inf) {
        return Status::Corruption("histogram " + current_hist_family +
                                  " missing le=\"+Inf\" bucket");
      }
      if (line.rfind("# TYPE ", 0) == 0 &&
          line.find(" histogram") != std::string::npos) {
        current_hist_family = line.substr(7, line.find(' ', 7) - 7);
        saw_inf = false;
        last_bucket = -1;
        last_bucket_scope.clear();
      } else {
        current_hist_family.clear();
      }
      continue;
    }
    // Sample line: name, optional {..}, space, value.
    size_t i = 0;
    while (i < line.size() && is_name_char(line[i])) ++i;
    if (i == 0) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad metric name");
    }
    const std::string sample_name = line.substr(0, i);
    std::string label_block;
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string::npos) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": unbalanced label braces");
      }
      label_block = line.substr(i, close - i + 1);
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": missing value separator");
    }
    const std::string value = line.substr(i + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": non-numeric value '" + value + "'");
    }
    if (!current_hist_family.empty() &&
        sample_name == current_hist_family + "_bucket") {
      const size_t le = label_block.find("le=\"");
      if (le == std::string::npos) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bucket sample without le label");
      }
      // A new scope/label set restarts the cumulative check.
      const std::string scope_part = label_block.substr(0, le);
      if (scope_part != last_bucket_scope) {
        last_bucket = -1;
        last_bucket_scope = scope_part;
      }
      const long long v = std::strtoll(value.c_str(), nullptr, 10);
      if (v < last_bucket) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": non-cumulative bucket series");
      }
      last_bucket = v;
      if (label_block.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
    }
  }
  if (!saw_inf) {
    return Status::Corruption("histogram " + current_hist_family +
                              " missing le=\"+Inf\" bucket");
  }
  return Status::Ok();
}

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_PROMETHEUS_H_
