#ifndef GTHINKER_OBS_SAMPLER_H_
#define GTHINKER_OBS_SAMPLER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gthinker::obs {

/// Gauge names the cluster's sampler thread probes per worker, in probe
/// order. This is the single source of truth for the sampled set: the
/// cluster indexes its series buffers by position here, and tests derive
/// the expected `timeseries` count (workers x this) from its size instead
/// of hardcoding it.
inline constexpr const char* kWorkerSampledGauges[] = {
    "cache_size",  "live_tasks",  "queue_depth",
    "disk_tasks",  "inbox_depth", "spill_queue_depth",
};
inline constexpr size_t kNumWorkerSampledGauges =
    sizeof(kWorkerSampledGauges) / sizeof(kWorkerSampledGauges[0]);

/// One sampled time-series: (t_us, value) points for a named gauge of one
/// worker (worker -1 = cluster/hub scope).
struct TimeSeries {
  std::string name;
  int worker = -1;
  /// Effective sampling stride: points were kept every `stride` samples
  /// (grows by decimation; see BoundedSeries).
  int64_t stride = 1;
  std::vector<std::pair<int64_t, int64_t>> points;
};

/// Bounded gauge time-series. Appends are O(1); when the buffer fills, the
/// series is decimated — every other retained point is dropped and the
/// effective stride doubles — so a run of any length keeps full temporal
/// coverage at degrading resolution instead of truncating its tail. Single
/// writer (the sampler thread); readers take the finished series after the
/// sampler stops.
class BoundedSeries {
 public:
  BoundedSeries(std::string name, int worker, size_t max_points = 2048)
      : max_points_(max_points < 2 ? 2 : max_points) {
    series_.name = std::move(name);
    series_.worker = worker;
  }

  void Append(int64_t t_us, int64_t value) {
    if (++tick_ % series_.stride != 0) return;
    if (series_.points.size() >= max_points_) {
      // Keep every other point (the older half thins evenly), double stride.
      size_t kept = 0;
      for (size_t i = 0; i < series_.points.size(); i += 2) {
        series_.points[kept++] = series_.points[i];
      }
      series_.points.resize(kept);
      series_.stride *= 2;
    }
    series_.points.emplace_back(t_us, value);
  }

  const TimeSeries& series() const { return series_; }
  TimeSeries Take() { return std::move(series_); }

 private:
  const size_t max_points_;
  int64_t tick_ = 0;
  TimeSeries series_;
};

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_SAMPLER_H_
