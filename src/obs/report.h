#ifndef GTHINKER_OBS_REPORT_H_
#define GTHINKER_OBS_REPORT_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phase_profile.h"
#include "obs/sampler.h"
#include "obs/span_trace.h"
#include "util/status.h"

namespace gthinker::obs {

/// Structured run report: everything a run produced, exportable as one JSON
/// document (`BENCH_*.json`-compatible at the top level: job/elapsed/memory
/// scalars first, then per-scope metrics, then sampled time-series).
///
/// The report layer is deliberately framework-agnostic — scalars are named
/// numbers, metrics are registry snapshots — so the core fills it without
/// obs depending back on core types. Maps keep keys sorted, making the JSON
/// byte-stable for a given run (modulo the measured values themselves).
struct JobReport {
  std::string job;                         // app/job name
  std::map<std::string, int64_t> ints;     // counters, bytes, config knobs
  std::map<std::string, double> doubles;   // elapsed seconds, derived rates
  std::map<std::string, std::string> strings;
  std::vector<MetricsSnapshot> metrics;    // one per scope (worker/hub)
  /// Per-scope derived ratios (hit rates, utilization), keyed by scope then
  /// metric name.
  std::vector<std::pair<std::string, std::map<std::string, double>>> derived;
  std::vector<TimeSeries> series;
  /// Per-worker/per-comper wall-time attribution + straggler table; omitted
  /// from the JSON when empty (phase profiling disabled).
  PhaseProfile phases;

  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject();
    w.Key("job");
    w.String(job);
    for (const auto& [k, v] : strings) {
      w.Key(k);
      w.String(v);
    }
    for (const auto& [k, v] : ints) {
      w.Key(k);
      w.Int(v);
    }
    for (const auto& [k, v] : doubles) {
      w.Key(k);
      w.Double(v);
    }

    w.Key("derived");
    w.BeginObject();
    for (const auto& [scope, values] : derived) {
      w.Key(scope);
      w.BeginObject();
      for (const auto& [k, v] : values) {
        w.Key(k);
        w.Double(v);
      }
      w.EndObject();
    }
    w.EndObject();

    if (!phases.empty()) {
      w.Key("phases");
      phases.WriteJson(&w);
    }

    w.Key("metrics");
    w.BeginArray();
    for (const MetricsSnapshot& snap : metrics) {
      WriteSnapshot(&w, snap);
    }
    w.EndArray();

    w.Key("timeseries");
    w.BeginArray();
    for (const TimeSeries& ts : series) {
      w.BeginObject();
      w.Key("name");
      w.String(ts.name);
      w.Key("worker");
      w.Int(ts.worker);
      w.Key("stride");
      w.Int(ts.stride);
      w.Key("points");
      w.BeginArray();
      for (const auto& [t, v] : ts.points) {
        w.BeginArray();
        w.Int(t);
        w.Int(v);
        w.EndArray();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();

    w.EndObject();
    return w.Take();
  }

  Status WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot open report file " + path);
    }
    out << ToJson() << "\n";
    out.close();
    if (!out.good()) return Status::IoError("short write to " + path);
    return Status::Ok();
  }

  /// Rebuilds the scalar portions (job, ints, doubles, strings) from a JSON
  /// document produced by ToJson(). Metrics/series round-trip structurally
  /// (validated by tests) but are not re-ingested — reports are read back
  /// for comparison and tooling, not to resume runs.
  static Status FromJson(const std::string& text, JobReport* out) {
    JsonValue root;
    GT_RETURN_IF_ERROR(JsonParse(text, &root));
    if (!root.IsObject()) return Status::Corruption("report is not an object");
    out->ints.clear();
    out->doubles.clear();
    out->strings.clear();
    for (const auto& [key, value] : root.object) {
      if (key == "derived" || key == "metrics" || key == "timeseries" ||
          key == "phases") {
        continue;
      }
      if (key == "job") {
        if (!value.IsString()) return Status::Corruption("job not a string");
        out->job = value.string;
      } else if (value.IsString()) {
        out->strings[key] = value.string;
      } else if (value.IsNumber()) {
        // Integral numbers round-trip into ints; the writer emits int64
        // scalars without a fraction or exponent.
        const double d = value.number;
        const int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) == d) {
          out->ints[key] = i;
        } else {
          out->doubles[key] = d;
        }
      }
    }
    return Status::Ok();
  }

 private:
  static void WriteSnapshot(JsonWriter* w, const MetricsSnapshot& snap) {
    w->BeginObject();
    w->Key("scope");
    w->String(snap.scope);
    w->Key("counters");
    w->BeginObject();
    for (const auto& [name, value] : snap.counters) {
      w->Key(name);
      w->Int(value);
    }
    w->EndObject();
    w->Key("gauges");
    w->BeginObject();
    for (const auto& [name, value] : snap.gauges) {
      w->Key(name);
      w->Int(value);
    }
    w->EndObject();
    w->Key("histograms");
    w->BeginArray();
    for (const HistogramSnapshot& h : snap.histograms) {
      w->BeginObject();
      w->Key("name");
      w->String(h.labels.empty() ? h.name : h.name + "{" + h.labels + "}");
      w->Key("count");
      w->Int(h.count);
      w->Key("sum");
      w->Int(h.sum);
      w->Key("max");
      w->Int(h.max);
      w->Key("mean");
      w->Double(h.Mean());
      w->Key("p50");
      w->Double(h.Percentile(0.50));
      w->Key("p95");
      w->Double(h.Percentile(0.95));
      w->Key("p99");
      w->Double(h.Percentile(0.99));
      // Sparse bucket encoding: [index, count] pairs for non-empty buckets;
      // bucket i >= 1 covers [2^(i-1), 2^i - 1], bucket 0 covers <= 0.
      w->Key("buckets");
      w->BeginArray();
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        w->BeginArray();
        w->Int(static_cast<int64_t>(i));
        w->Int(h.buckets[i]);
        w->EndArray();
      }
      w->EndArray();
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
};

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_REPORT_H_
