#ifndef GTHINKER_OBS_METRICS_H_
#define GTHINKER_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace gthinker::obs {

/// Monotonic event counter. Recording is one relaxed fetch_add — safe and
/// cheap from any thread, including the compers' hot loops.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level (queue depth, cache occupancy). Written by samplers,
/// read by snapshots; both sides are single relaxed atomics.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one histogram, with quantile estimation.
struct HistogramSnapshot {
  std::string name;
  std::string labels;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::vector<int64_t> buckets;  // indexed like Histogram::BucketIndex

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Estimated p-quantile (p in [0,1]): finds the bucket holding the target
  /// rank and interpolates linearly inside its [lower, upper] value range.
  /// Power-of-2 buckets bound the relative error of the estimate by 2x.
  double Percentile(double p) const {
    if (count == 0) return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    const double target = p * static_cast<double>(count);
    int64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      const int64_t before = cumulative;
      cumulative += buckets[i];
      if (static_cast<double>(cumulative) >= target) {
        const double lo = static_cast<double>(BucketLowerBound(i));
        const double hi = static_cast<double>(BucketUpperBound(i));
        const double frac =
            buckets[i] == 0
                ? 0.0
                : (target - static_cast<double>(before)) /
                      static_cast<double>(buckets[i]);
        return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      }
    }
    return static_cast<double>(max);
  }

  /// Bucket 0 holds exactly the value 0 (and clamped negatives); bucket
  /// i >= 1 holds values in [2^(i-1), 2^i - 1].
  static int64_t BucketLowerBound(size_t index) {
    return index == 0 ? 0 : int64_t{1} << (index - 1);
  }
  static int64_t BucketUpperBound(size_t index) {
    return index == 0 ? 0 : (int64_t{1} << index) - 1;
  }
};

/// Fixed-bucket latency/size histogram with power-of-2 bucket boundaries
/// (bucket i >= 1 covers [2^(i-1), 2^i - 1]; bucket 0 covers <= 0). Record
/// is three relaxed atomic RMWs and one comparison loop for the max — no
/// locks, no allocation, safe from any thread while a snapshot is taken.
class Histogram {
 public:
  /// 2^47 microseconds is ~4.5 years; the last bucket absorbs anything above.
  static constexpr int kNumBuckets = 48;

  static int BucketIndex(int64_t value) {
    if (value <= 0) return 0;
    int index = 0;
    while (value > 0 && index < kNumBuckets - 1) {
      value >>= 1;
      ++index;
    }
    return index;
  }

  void Record(int64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    snap.buckets.resize(kNumBuckets);
    for (int i = 0; i < kNumBuckets; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return snap;
  }

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// One registry's full state at a point in time, JSON-serializable by the
/// report layer. `scope` identifies whose registry this is ("worker0",
/// "hub", ...).
struct MetricsSnapshot {
  std::string scope;
  std::vector<std::pair<std::string, int64_t>> counters;  // name|labels
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter lookup by full name (labels included when registered with any);
  /// -1 when absent, so ratios of missing counters read as invalid.
  int64_t CounterValue(const std::string& name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return -1;
  }

  const HistogramSnapshot* FindHistogram(const std::string& name) const {
    for (const HistogramSnapshot& h : histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  }
};

/// Registry of named metrics for one scope (one worker, the hub, ...).
/// Registration (Get*) takes a mutex and is expected at setup time; the
/// returned pointers are stable for the registry's lifetime and recording
/// through them is lock-free. Labels are a free-form "key=value,..." suffix
/// distinguishing instances of the same metric (e.g. per-comper).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::string scope = "") : scope_(std::move(scope)) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& labels = "") {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string key = Key(name, labels);
    auto it = counter_index_.find(key);
    if (it != counter_index_.end()) return &counters_[it->second].metric;
    counter_index_.emplace(key, counters_.size());
    counters_.emplace_back();  // in place: metrics hold atomics, no moves
    counters_.back().name = name;
    counters_.back().labels = labels;
    return &counters_.back().metric;
  }

  Gauge* GetGauge(const std::string& name, const std::string& labels = "") {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string key = Key(name, labels);
    auto it = gauge_index_.find(key);
    if (it != gauge_index_.end()) return &gauges_[it->second].metric;
    gauge_index_.emplace(key, gauges_.size());
    gauges_.emplace_back();
    gauges_.back().name = name;
    gauges_.back().labels = labels;
    return &gauges_.back().metric;
  }

  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "") {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string key = Key(name, labels);
    auto it = histogram_index_.find(key);
    if (it != histogram_index_.end()) return &histograms_[it->second].metric;
    histogram_index_.emplace(key, histograms_.size());
    histograms_.emplace_back();
    histograms_.back().name = name;
    histograms_.back().labels = labels;
    return &histograms_.back().metric;
  }

  /// Consistent-enough snapshot: each metric is read atomically; the set of
  /// metrics is frozen under the registration mutex. Safe to call while
  /// other threads record.
  MetricsSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.scope = scope_;
    snap.counters.reserve(counters_.size());
    for (const auto& entry : counters_) {
      snap.counters.emplace_back(Key(entry.name, entry.labels),
                                 entry.metric.value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& entry : gauges_) {
      snap.gauges.emplace_back(Key(entry.name, entry.labels),
                               entry.metric.value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& entry : histograms_) {
      HistogramSnapshot h = entry.metric.Snapshot();
      h.name = entry.name;
      h.labels = entry.labels;
      snap.histograms.push_back(std::move(h));
    }
    return snap;
  }

  const std::string& scope() const { return scope_; }

 private:
  template <typename MetricT>
  struct Entry {
    std::string name;
    std::string labels;
    MetricT metric;
  };

  static std::string Key(const std::string& name, const std::string& labels) {
    return labels.empty() ? name : name + "{" + labels + "}";
  }

  const std::string scope_;
  mutable std::mutex mutex_;
  // Deques: stable addresses across registration (metrics are not movable
  // anyway — they hold atomics).
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
  std::unordered_map<std::string, size_t> counter_index_;
  std::unordered_map<std::string, size_t> gauge_index_;
  std::unordered_map<std::string, size_t> histogram_index_;
};

}  // namespace gthinker::obs

#endif  // GTHINKER_OBS_METRICS_H_
